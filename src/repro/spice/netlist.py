"""Netlist abstraction: circuits, nodes and the device interface.

A :class:`Circuit` is a bag of named nodes plus devices connected between
them.  Node ``"0"``/``"gnd"`` is the global reference and never appears in
the MNA system.  Devices stamp themselves into the system through a
:class:`Stamper`, which hides matrix indexing and the ground convention.

Device taxonomy (how the engine calls back into a device):

``stamp_static``
    Contributions that depend only on device values (linear resistors,
    the constant rows/columns of voltage sources).  Evaluated once per
    analysis (and cached by the engine).
``stamp_dynamic``
    Contributions that depend on the previous time-point solution or the
    step size (capacitor companion models).  Evaluated once per time step.
``stamp_source``
    Time-dependent right-hand-side values (source waveforms).  Evaluated
    once per time step.
``stamp_nonlinear``
    Contributions that depend on the current Newton iterate (MOSFETs,
    diodes).  Evaluated every Newton iteration.

A device only overrides the hooks it needs.
"""

from __future__ import annotations

from typing import Iterable

from repro.spice.errors import NetlistError

#: Sentinel index used for the ground node (excluded from the MNA system).
_GROUND_INDEX = -1


class Node:
    """A named circuit node.  Compares by identity; hashable."""

    __slots__ = ("name", "index")

    def __init__(self, name: str, index: int):
        self.name = name
        self.index = index

    @property
    def is_ground(self) -> bool:
        return self.index == _GROUND_INDEX

    def __repr__(self):
        return f"Node({self.name!r})"


#: The global reference node.  Shared across circuits (it carries no state).
GROUND = Node("0", _GROUND_INDEX)


class Device:
    """Base class for all circuit elements."""

    def __init__(self, name: str, nodes: Iterable[Node]):
        self.name = name
        self.node_list = tuple(nodes)
        for n in self.node_list:
            if not isinstance(n, Node):
                raise NetlistError(
                    f"device {name!r}: expected Node instances, got {n!r}")

    #: True if the device needs an MNA branch-current unknown.
    needs_branch = False

    def stamp_static(self, st: "Stamper") -> None:
        """Stamp value-only contributions (see module docstring)."""

    def stamp_dynamic(self, st: "Stamper") -> None:
        """Stamp step-size / previous-solution dependent contributions."""

    def stamp_source(self, st: "Stamper") -> None:
        """Stamp time-dependent RHS contributions."""

    def stamp_nonlinear(self, st: "Stamper") -> None:
        """Stamp Newton-iterate dependent contributions."""

    @property
    def is_nonlinear(self) -> bool:
        return type(self).stamp_nonlinear is not Device.stamp_nonlinear

    def __repr__(self):
        names = ",".join(n.name for n in self.node_list)
        return f"{type(self).__name__}({self.name!r}, nodes=[{names}])"


class Circuit:
    """A mutable netlist.

    Nodes are created on demand with :meth:`node`; devices are attached with
    :meth:`add`.  Once handed to an analysis the circuit is *finalised*
    (branch indices assigned); adding devices afterwards restarts that
    process transparently.
    """

    def __init__(self, title: str = "circuit"):
        self.title = title
        self._nodes: dict[str, Node] = {}
        self._devices: dict[str, Device] = {}
        self._finalized = False
        self._branch_of: dict[str, int] = {}
        self.num_branches = 0

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def node(self, name: str) -> Node:
        """Return the node called ``name``, creating it if necessary.

        The names ``"0"``, ``"gnd"`` and ``"GND"`` all refer to ground.
        """
        if name in ("0", "gnd", "GND", "ground"):
            return GROUND
        found = self._nodes.get(name)
        if found is None:
            found = Node(name, len(self._nodes))
            self._nodes[name] = found
        return found

    def add(self, device: Device) -> Device:
        """Attach ``device``; returns it for chaining."""
        if device.name in self._devices:
            raise NetlistError(f"duplicate device name {device.name!r}")
        for n in device.node_list:
            if not n.is_ground and self._nodes.get(n.name) is not n:
                raise NetlistError(
                    f"device {device.name!r} uses node {n.name!r} that does "
                    f"not belong to this circuit")
        self._devices[device.name] = device
        self._finalized = False
        return device

    def remove(self, name: str) -> Device:
        """Detach and return the device called ``name``."""
        try:
            dev = self._devices.pop(name)
        except KeyError:
            raise NetlistError(f"no device named {name!r}") from None
        self._finalized = False
        return dev

    def __contains__(self, name: str) -> bool:
        return name in self._devices

    def __getitem__(self, name: str) -> Device:
        try:
            return self._devices[name]
        except KeyError:
            raise NetlistError(f"no device named {name!r}") from None

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def nodes(self) -> list[Node]:
        return list(self._nodes.values())

    @property
    def node_names(self) -> list[str]:
        return list(self._nodes.keys())

    @property
    def devices(self) -> list[Device]:
        return list(self._devices.values())

    @property
    def num_nodes(self) -> int:
        return len(self._nodes)

    def has_node(self, name: str) -> bool:
        return name in self._nodes or name in ("0", "gnd", "GND", "ground")

    # ------------------------------------------------------------------
    # finalisation (assign MNA branch indices)
    # ------------------------------------------------------------------
    def finalize(self) -> None:
        """Assign branch-current unknowns; idempotent."""
        if self._finalized:
            return
        self._branch_of = {}
        branch = 0
        for dev in self._devices.values():
            if dev.needs_branch:
                self._branch_of[dev.name] = branch
                branch += 1
        self.num_branches = branch
        self._finalized = True

    def branch_index(self, device_name: str) -> int:
        """MNA branch index of a voltage-defined device (after finalize)."""
        self.finalize()
        try:
            return self._branch_of[device_name]
        except KeyError:
            raise NetlistError(
                f"device {device_name!r} has no branch unknown") from None

    @property
    def system_size(self) -> int:
        """Number of MNA unknowns (node voltages + branch currents)."""
        self.finalize()
        return self.num_nodes + self.num_branches

    def __repr__(self):
        return (f"Circuit({self.title!r}, nodes={self.num_nodes}, "
                f"devices={len(self._devices)})")


class AnalysisContext:
    """State shared with devices while stamping.

    Attributes
    ----------
    time:
        Current simulation time (end of the step being solved).
    dt:
        Time-step size, or ``None`` for DC analyses (capacitors open).
    temp_c:
        Simulation temperature in degrees Celsius.
    x:
        Current Newton iterate (node voltages then branch currents).
    x_prev:
        Solution at the previous accepted time point.
    method:
        Integration method: ``"be"`` (backward Euler) or ``"trap"``.
    """

    __slots__ = ("time", "dt", "temp_c", "x", "x_prev", "method")

    def __init__(self, time=0.0, dt=None, temp_c=27.0, x=None, x_prev=None,
                 method="be"):
        self.time = time
        self.dt = dt
        self.temp_c = temp_c
        self.x = x
        self.x_prev = x_prev
        self.method = method


class Stamper:
    """Write adapter from device contributions to the MNA system.

    Ground-connected terminals are silently dropped, which implements the
    reduced MNA formulation.  Devices address branch rows through their
    pre-resolved branch index (``circuit.branch_index``).
    """

    __slots__ = ("A", "b", "num_nodes", "ctx")

    def __init__(self, A, b, num_nodes: int, ctx: AnalysisContext):
        self.A = A
        self.b = b
        self.num_nodes = num_nodes
        self.ctx = ctx

    def rebind(self, A, b, ctx: AnalysisContext) -> "Stamper":
        """Re-target this stamper at new system arrays (hot-loop reuse)."""
        self.A = A
        self.b = b
        self.ctx = ctx
        return self

    # -- reading the current iterate -----------------------------------
    def v(self, node: Node) -> float:
        """Voltage of ``node`` in the current Newton iterate."""
        if node.is_ground:
            return 0.0
        return self.ctx.x[node.index]

    def v_prev(self, node: Node) -> float:
        """Voltage of ``node`` at the previous accepted time point."""
        if node.is_ground:
            return 0.0
        return self.ctx.x_prev[node.index]

    # -- matrix stamps ---------------------------------------------------
    def conductance(self, a: Node, b: Node, g: float) -> None:
        """Stamp a two-terminal conductance ``g`` between nodes ``a``/``b``."""
        A = self.A
        ia, ib = a.index, b.index
        if ia >= 0:
            A[ia, ia] += g
        if ib >= 0:
            A[ib, ib] += g
        if ia >= 0 and ib >= 0:
            A[ia, ib] -= g
            A[ib, ia] -= g

    def transconductance(self, out_p: Node, out_n: Node,
                         in_p: Node, in_n: Node, gm: float) -> None:
        """Stamp a VCCS: current ``gm * (v(in_p) - v(in_n))`` flows from
        ``out_p`` to ``out_n`` through the source (out of ``out_p``'s KCL)."""
        A = self.A
        op, on = out_p.index, out_n.index
        ip, in_ = in_p.index, in_n.index
        if op >= 0:
            if ip >= 0:
                A[op, ip] += gm
            if in_ >= 0:
                A[op, in_] -= gm
        if on >= 0:
            if ip >= 0:
                A[on, ip] -= gm
            if in_ >= 0:
                A[on, in_] += gm

    def current(self, a: Node, b: Node, i: float) -> None:
        """Stamp an independent current ``i`` flowing from ``a`` to ``b``."""
        if a.index >= 0:
            self.b[a.index] -= i
        if b.index >= 0:
            self.b[b.index] += i

    # -- branch (voltage-defined) stamps ----------------------------------
    def branch_row(self, branch: int) -> int:
        return self.num_nodes + branch

    def incidence(self, p: Node, n: Node, branch: int) -> None:
        """Stamp the ±1 incidence pattern of a voltage-defined branch."""
        A = self.A
        row = self.branch_row(branch)
        ip, in_ = p.index, n.index
        if ip >= 0:
            A[ip, row] += 1.0
            A[row, ip] += 1.0
        if in_ >= 0:
            A[in_, row] -= 1.0
            A[row, in_] -= 1.0

    def voltage_source(self, p: Node, n: Node, branch: int, value: float) -> None:
        """Stamp an ideal voltage source ``v(p) - v(n) = value``."""
        A, b = self.A, self.b
        row = self.branch_row(branch)
        ip, in_ = p.index, n.index
        if ip >= 0:
            A[ip, row] += 1.0
            A[row, ip] += 1.0
        if in_ >= 0:
            A[in_, row] -= 1.0
            A[row, in_] -= 1.0
        b[row] += value

    def branch_rhs(self, branch: int, value: float) -> None:
        """Add ``value`` to the RHS of a branch equation (source waveforms)."""
        self.b[self.branch_row(branch)] += value
