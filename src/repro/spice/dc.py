"""DC operating-point analysis with gmin stepping.

Capacitors are open circuits; sources are evaluated at ``t = 0``.  The
nonlinear solve is continued from a heavily-regularised system (large gmin)
down to the target gmin, which reliably converges circuits with regenerative
feedback such as the sense amplifier latch.  When even the continuation
fails, a source-stepping rescue ramps the excitation from a fraction of its
value up to 100 % — the last line of defence before a
:class:`ConvergenceError` reaches the caller.
"""

from __future__ import annotations

import numpy as np

from repro.spice.backends import resolve_backend
from repro.spice.errors import ConvergenceError
from repro.spice.mna import DEFAULT_GMIN, System
from repro.spice.netlist import AnalysisContext, Circuit
from repro.spice.solver import newton_solve, source_step_solve


def dc_operating_point(circuit: Circuit, *, temp_c: float = 27.0,
                       gmin: float = DEFAULT_GMIN,
                       initial: dict[str, float] | None = None,
                       rescues: list[str] | None = None,
                       backend: str | None = None
                       ) -> dict[str, float]:
    """Solve the DC operating point; returns ``{node_name: volts}``.

    Pass a list as ``rescues`` to learn which rescue stages (if any) the
    solve needed — the stage names are appended in order.  ``backend``
    selects the linear-solver backend (``None`` follows the process-wide
    default; dense resolutions keep the bitwise-identical dense path).
    """
    system = System(circuit, gmin=gmin)
    resolved = resolve_backend(backend, system)
    backend_obj = resolved if resolved.sparse else None
    x = np.zeros(system.size)
    if initial:
        for name, volts in initial.items():
            if circuit.has_node(name) and name not in ("0", "gnd", "GND",
                                                       "ground"):
                x[circuit.node(name).index] = float(volts)

    ctx = AnalysisContext(time=0.0, dt=None, temp_c=temp_c, x=x, x_prev=x)
    A_step, b_step = system.build_step(ctx)

    # Continuation: relax from a strongly-regularised problem to the target.
    gmin_ladder = [1e-2, 1e-4, 1e-6, 1e-8, 1e-10, 0.0]
    last_error: ConvergenceError | None = None
    for extra in gmin_ladder:
        try:
            x = newton_solve(system, A_step, b_step, ctx, x,
                             extra_gmin=extra, max_iter=200,
                             backend=backend_obj)
            last_error = None
        except ConvergenceError as exc:
            last_error = exc
            # keep the current x and try the next rung anyway
    if last_error is not None:
        # Source-stepping rescue: ramp the excitation up to the exact
        # system.  The final step solves the true circuit, so a success
        # here is a genuine operating point.
        try:
            x = source_step_solve(system, A_step, b_step, ctx, x,
                                  max_iter=200, backend=backend_obj)
        except ConvergenceError as exc:
            raise ConvergenceError(
                f"DC operating point failed after gmin and source "
                f"stepping: {exc}", time=0.0,
                iterations=exc.iterations, nodes=exc.nodes,
                rescue_trail=("gmin", "source")) from exc
        if rescues is not None:
            rescues.append("source")
        _record_rescue("source")

    return {node.name: float(x[node.index]) for node in circuit.nodes}


def _record_rescue(stage: str) -> None:
    """Count a successful rescue in the run diagnostics."""
    from repro.diagnostics import diagnostics
    diagnostics().record_rescue(stage)
