"""Dense linear-algebra kernels: LU factorization with reuse.

The transient hot loop solves thousands of linear systems whose matrix
changes far less often than its right-hand side: for a linear (or
mostly-linear) circuit the step base matrix only depends on the step
size, and the time grid is overwhelmingly uniform.  Factoring once and
re-applying the factorization turns an O(n^3) LAPACK call per step into
an O(n^2) matrix-vector product.

* :func:`lu_factor` / :func:`lu_solve` — a pure-numpy LU pair (partial
  pivoting, Doolittle).  ``lu_solve`` runs the classic forward/backward
  substitution and matches ``np.linalg.solve`` to machine precision;
  a zero pivot raises :class:`~repro.spice.errors.SingularMatrixError`,
  mirroring the ``LinAlgError`` of the direct solve.
* :class:`LUFactorization` — the factor plus a lazily-built explicit
  inverse so repeated solves against the same matrix collapse to one
  BLAS ``gemv`` (:meth:`LUFactorization.solve_fast`).
* :class:`FactorizationCache` — a small keyed cache (the transient
  engine keys on ``(dt, method)``) with hit/miss accounting that the
  run diagnostics pick up.
"""

from __future__ import annotations

import contextlib

import numpy as np

from repro.spice.errors import SingularMatrixError


try:  # pragma: no cover - numpy-internal fast path
    from numpy.linalg import _umath_linalg

    _SOLVE1 = _umath_linalg.solve1
except (ImportError, AttributeError):  # pragma: no cover
    _SOLVE1 = None


def _raise_singular(err, flag):
    raise SingularMatrixError("Singular matrix")


def dense_errstate():
    """The errstate under which :func:`solve_dense_nocheck` may be called.

    Entering it once around a solve *loop* amortises the errstate setup
    that :func:`solve_dense` pays per call.  A no-op context when the
    fast entry point is unavailable.
    """
    if _SOLVE1 is None:
        return contextlib.nullcontext()
    return np.errstate(call=_raise_singular, invalid="call",
                       over="ignore", divide="ignore", under="ignore")


def solve_dense_nocheck(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """:func:`solve_dense` without the per-call errstate.

    The caller must hold :func:`dense_errstate` (singular matrices would
    otherwise emit warnings and return NaNs instead of raising).
    """
    if _SOLVE1 is not None:
        return _SOLVE1(a, b, signature="dd->d")
    try:
        return np.linalg.solve(a, b)
    except np.linalg.LinAlgError as exc:
        raise SingularMatrixError(str(exc)) from None


def solve_dense_lanes(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Batched dense solve: ``a`` is ``(n_lanes, n, n)``, ``b`` is
    ``(n_lanes, n)``; returns the stacked solutions.

    Dispatches to the same ``solve1`` gufunc as
    :func:`solve_dense_nocheck` — the gufunc broadcasts over the leading
    batch dimension, running one LAPACK factor+solve per lane, so each
    lane's answer is bitwise identical to a per-lane
    ``np.linalg.solve``.  The caller must hold :func:`dense_errstate`;
    a singular matrix in *any* lane raises
    :class:`SingularMatrixError` (use a per-lane fallback to identify
    the offender).
    """
    if _SOLVE1 is not None:
        return _SOLVE1(a, b, signature="dd->d")
    try:
        return np.linalg.solve(a, b)
    except np.linalg.LinAlgError as exc:
        raise SingularMatrixError(str(exc)) from None


def solve_dense(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """``np.linalg.solve`` for a square float ``a`` and 1-D ``b``, minus
    the wrapper overhead.

    Dispatches straight to the ``solve1`` gufunc that
    ``np.linalg.solve`` itself uses for a one-dimensional right-hand
    side (with the same errstate hookup, so singular matrices raise),
    making the result bitwise the same — the public wrapper's array
    coercion and dtype resolution just cost ~8 us per call, which
    matters at tens of thousands of Newton iterations per sweep.  Falls
    back to the public API when the internal entry point is missing.
    Raises :class:`SingularMatrixError` on a singular matrix.
    """
    if _SOLVE1 is not None:
        with np.errstate(call=_raise_singular, invalid="call",
                         over="ignore", divide="ignore", under="ignore"):
            return _SOLVE1(a, b, signature="dd->d")
    try:
        return np.linalg.solve(a, b)
    except np.linalg.LinAlgError as exc:
        raise SingularMatrixError(str(exc)) from None


class LUFactorization:
    """An LU factorization ``P A = L U`` with partial pivoting.

    ``lu`` stores ``L`` (unit diagonal, below) and ``U`` (on and above
    the diagonal) in one matrix; ``perm`` is the row permutation applied
    to the right-hand side.  The explicit inverse is built lazily on the
    first :meth:`solve_fast` call and cached for the lifetime of the
    factorization.
    """

    __slots__ = ("lu", "perm", "n", "_inv")

    def __init__(self, a: np.ndarray):
        a = np.asarray(a, dtype=float)
        if a.ndim != 2 or a.shape[0] != a.shape[1]:
            raise SingularMatrixError(
                f"LU factorization needs a square matrix, got {a.shape}")
        n = a.shape[0]
        lu = a.copy()
        perm = np.arange(n)
        for k in range(n - 1):
            p = k + int(np.argmax(np.abs(lu[k:, k])))
            if lu[p, k] == 0.0:
                raise SingularMatrixError("singular matrix (zero pivot)")
            if p != k:
                lu[[k, p]] = lu[[p, k]]
                perm[[k, p]] = perm[[p, k]]
            lu[k + 1:, k] /= lu[k, k]
            lu[k + 1:, k + 1:] -= np.outer(lu[k + 1:, k], lu[k, k + 1:])
        if n and lu[n - 1, n - 1] == 0.0:
            raise SingularMatrixError("singular matrix (zero pivot)")
        self.lu = lu
        self.perm = perm
        self.n = n
        self._inv: np.ndarray | None = None

    # ------------------------------------------------------------------
    # solving
    # ------------------------------------------------------------------
    def solve(self, b: np.ndarray) -> np.ndarray:
        """Forward/backward substitution; accepts vector or matrix RHS."""
        lu, n = self.lu, self.n
        x = np.asarray(b, dtype=float)[self.perm].copy()
        matrix_rhs = x.ndim == 2
        for k in range(n - 1):           # forward: L y = P b
            if matrix_rhs:
                x[k + 1:] -= np.outer(lu[k + 1:, k], x[k])
            else:
                x[k + 1:] -= lu[k + 1:, k] * x[k]
        for k in range(n - 1, -1, -1):   # backward: U x = y
            x[k] /= lu[k, k]
            if matrix_rhs:
                x[:k] -= np.outer(lu[:k, k], x[k])
            else:
                x[:k] -= lu[:k, k] * x[k]
        return x

    @property
    def inverse(self) -> np.ndarray:
        """Explicit inverse (built once, cached)."""
        if self._inv is None:
            self._inv = self.solve(np.eye(self.n))
        return self._inv

    def solve_fast(self, b: np.ndarray) -> np.ndarray:
        """Solve via the cached explicit inverse: one ``gemv`` per call.

        Marginally less accurate than :meth:`solve` (both carry a
        ``cond(A) * eps`` forward error; substitution is backward
        stable), but an order of magnitude cheaper when the same matrix
        is solved against thousands of right-hand sides.
        """
        return self.inverse @ b


def lu_factor(a: np.ndarray) -> LUFactorization:
    """Factor ``a``; raises :class:`SingularMatrixError` on a zero pivot."""
    return LUFactorization(a)


def lu_solve(fact: LUFactorization, b: np.ndarray) -> np.ndarray:
    """Solve ``A x = b`` from a :func:`lu_factor` result (substitution)."""
    return fact.solve(b)


class FactorizationCache:
    """Bounded LRU cache of factorization objects.

    The transient engine keys entries by ``(dt, method)`` — the only
    inputs the step base matrix of a linear circuit depends on — so one
    factorization serves every step of a uniform grid.  Long adaptive
    runs (bisection floors, breakpoint-split grids) can visit many step
    sizes, so the cache is LRU-bounded: at ``max_entries`` the least
    recently used entry is evicted (previously the cache cleared
    wholesale, throwing away every hot factorization).  ``hits`` /
    ``misses`` / ``evictions`` feed the solver-kernel counters in
    :mod:`repro.diagnostics`.

    ``factor`` lets a solver backend substitute its own factorization
    constructor (the sparse backend caches
    :class:`~repro.spice.backends.SparseFactorization` objects through
    the same policy); the default is the dense :func:`lu_factor`.
    """

    def __init__(self, max_entries: int = 64):
        self.max_entries = int(max_entries)
        self._entries: dict = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key, matrix: np.ndarray, factor=lu_factor):
        """Return the cached factorization for ``key``, factoring on miss."""
        fact = self._entries.get(key)
        if fact is not None:
            self.hits += 1
            # dicts preserve insertion order; re-inserting marks the
            # entry most recently used.
            del self._entries[key]
            self._entries[key] = fact
            return fact
        self.misses += 1
        fact = factor(matrix)
        while len(self._entries) >= self.max_entries:
            self._entries.pop(next(iter(self._entries)))
            self.evictions += 1
        self._entries[key] = fact
        return fact

    def clear(self) -> None:
        self._entries.clear()
