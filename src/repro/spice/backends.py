"""Pluggable solver backends: dense LU and sparse CSR behind one API.

The Newton/transient drivers used to hard-code dense solves
(:func:`~repro.spice.linalg.solve_dense_nocheck`, ``np.linalg.solve``,
:func:`~repro.spice.linalg.lu_factor`).  That is the right call at the
~30-node scale of the seed column — and fatal at the 100+-node scale of
the :mod:`repro.dram.array` netlists, where the O(n^3) dense factor
dominates every transient.  This module makes the linear-solve kernel a
*backend* the drivers resolve through a registry:

* :class:`SolverBackend` — the protocol: ``solve`` (one-shot),
  ``factorize`` (reusable :class:`Factorization` with ``solve`` /
  ``solve_fast``) and ``refactorize`` (same pattern, new values).
* :class:`DenseBackend` — routes to the exact pre-existing dense
  kernels.  The dense path through the drivers is bitwise identical to
  the pre-backend code: resolution hands the drivers the same functions
  they called before.
* :class:`SparseBackend` — CSR + :func:`scipy.sparse.linalg.splu`.  The
  sparsity pattern is built **once per topology** from the compiled
  stamp plans (:mod:`repro.spice.plans`): the union of every flat
  matrix slot the static/dynamic/nonlinear plans can ever scatter into
  (both MOSFET orientation variants) plus the gmin diagonal.  Per solve
  the values are gathered from the dense assembly scratch at those
  fixed positions — O(nnz) — so only the factorization itself changes
  complexity class.  Numeric factorizations are reused across Newton
  iterations and time steps through the same caches as the dense path
  (:class:`~repro.spice.linalg.FactorizationCache`, modified-Newton
  reuse); the symbolic structure (indptr/indices) is shared by every
  factorization of the system.
* a **registry** (:func:`register_backend`, :func:`available_backends`)
  plus the **auto-selection policy** (:func:`resolve_backend`): keyed
  on system size and pattern density, measured so the seed column stays
  dense (bitwise parity) and array-scale systems go sparse.

Graceful degradation: when scipy is missing, the plans fell back to the
per-device path (no trustworthy pattern), or — under ``auto`` — the
pattern is too dense to win, resolution returns the dense backend and
counts the degradation in the system's kernel counters
(:mod:`repro.diagnostics`).
"""

from __future__ import annotations

import numpy as np

from repro.spice.errors import SingularMatrixError, SpiceError
from repro.spice.linalg import (LUFactorization, lu_factor, solve_dense,
                                solve_dense_lanes, solve_dense_nocheck)

#: ``auto`` picks the sparse backend only at and above this system size.
#: Measured crossover of gather+splu vs the LAPACK dense solve on
#: MNA-shaped matrices (~5 nnz/row): sparse breaks even near n~180 and
#: is >=3x faster from n~300 (see reports/sparse.txt).
SPARSE_AUTO_MIN_SIZE = 192

#: ``auto`` keeps dense when the pattern fills more than this fraction
#: of the matrix — a near-dense pattern pays CSR overhead for nothing.
SPARSE_AUTO_MAX_DENSITY = 0.25

#: Scipy import probe: ``None`` = not probed, ``False`` = missing,
#: otherwise the ``scipy.sparse`` / ``scipy.sparse.linalg`` module pair.
_SCIPY: tuple | None | bool = None


def _scipy():
    """The ``(scipy.sparse, scipy.sparse.linalg)`` pair, or ``False``."""
    global _SCIPY
    if _SCIPY is None:
        try:
            import scipy.sparse as _sp
            import scipy.sparse.linalg as _spla
            _SCIPY = (_sp, _spla)
        except ImportError:  # pragma: no cover - exercised via monkeypatch
            _SCIPY = False
    return _SCIPY


def scipy_available() -> bool:
    """Is the optional sparse dependency importable?"""
    return bool(_scipy())


class BackendError(SpiceError):
    """A backend was requested that cannot be resolved."""


# ----------------------------------------------------------------------
# protocol
# ----------------------------------------------------------------------
class Factorization:
    """Protocol of a reusable factorization: ``solve`` + ``solve_fast``.

    :class:`~repro.spice.linalg.LUFactorization` satisfies it natively;
    :class:`SparseFactorization` wraps a SuperLU object.
    """

    def solve(self, b: np.ndarray) -> np.ndarray:  # pragma: no cover
        raise NotImplementedError

    def solve_fast(self, b: np.ndarray) -> np.ndarray:  # pragma: no cover
        raise NotImplementedError


class SolverBackend:
    """Protocol all solver backends implement.

    ``sparse`` is the dispatch flag the hot loops branch on — the dense
    branches must stay byte-for-byte the pre-backend code, so drivers
    check one attribute instead of isinstance chains.
    """

    #: Registry name; also the ``--backend`` CLI value.
    name: str = "abstract"
    #: True when ``solve`` consumes the dense scratch through a sparse path.
    sparse: bool = False

    def solve(self, A: np.ndarray, b: np.ndarray) -> np.ndarray:
        """One-shot solve of ``A x = b``; raises
        :class:`SingularMatrixError` on a singular matrix."""
        raise NotImplementedError

    def factorize(self, A: np.ndarray) -> Factorization:
        """Factor ``A`` for repeated solves against many right-hand sides."""
        raise NotImplementedError

    def refactorize(self, fact: Factorization,
                    A: np.ndarray) -> Factorization:
        """Re-factor with new values on the same structure.

        The base implementation simply factorizes again; backends with a
        reusable symbolic analysis override it.
        """
        return self.factorize(A)


# ----------------------------------------------------------------------
# dense backend
# ----------------------------------------------------------------------
class DenseBackend(SolverBackend):
    """The pre-existing dense LU kernels behind the backend API.

    Every method routes to the exact function the drivers called before
    the backend layer existed, so a dense-resolved run is bitwise
    identical to the pre-backend code.
    """

    name = "dense"
    sparse = False

    def solve(self, A: np.ndarray, b: np.ndarray) -> np.ndarray:
        return solve_dense(A, b)

    def solve_nocheck(self, A: np.ndarray, b: np.ndarray) -> np.ndarray:
        """:func:`~repro.spice.linalg.solve_dense_nocheck` (caller holds
        :func:`~repro.spice.linalg.dense_errstate`)."""
        return solve_dense_nocheck(A, b)

    def solve_lanes(self, A: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Batched lane solve (see the lane batcher)."""
        return solve_dense_lanes(A, b)

    def factorize(self, A: np.ndarray) -> LUFactorization:
        return lu_factor(A)


#: Shared dense backend instance (stateless).
DENSE = DenseBackend()


# ----------------------------------------------------------------------
# sparse backend
# ----------------------------------------------------------------------
class SparseFactorization(Factorization):
    """A SuperLU factorization behind the :class:`Factorization` protocol."""

    __slots__ = ("_lu",)

    def __init__(self, lu):
        self._lu = lu

    def solve(self, b: np.ndarray) -> np.ndarray:
        return self._lu.solve(np.asarray(b, dtype=float))

    #: The dense fast path solves through a cached explicit inverse; the
    #: sparse equivalent is the (already cheap) triangular solve.
    solve_fast = solve


class SparsityPattern:
    """The fixed CSR structure of one system topology.

    Built once from the compiled stamp plans: ``indptr``/``indices`` are
    the CSR structure, ``gather`` the flat positions in the dense
    ``size x size`` assembly scratch that map 1:1 onto the CSR data
    array.  Gathering ``A.ravel()[gather]`` re-values the pattern in
    O(nnz) — every plan scatter lands inside it by construction.
    """

    __slots__ = ("size", "indptr", "indices", "gather", "nnz")

    def __init__(self, size: int, flat_slots: np.ndarray):
        flat = np.unique(np.asarray(flat_slots, dtype=np.intp))
        flat = flat[(flat >= 0) & (flat < size * size)]
        self.size = size
        self.nnz = int(flat.size)
        # np.unique sorts ascending = row-major = CSR order.
        self.gather = flat
        rows = flat // size
        self.indices = (flat % size).astype(np.int32)
        self.indptr = np.zeros(size + 1, dtype=np.int32)
        np.add.at(self.indptr, rows + 1, 1)
        np.cumsum(self.indptr, out=self.indptr)

    @property
    def density(self) -> float:
        n2 = self.size * self.size
        return self.nnz / n2 if n2 else 1.0


def _plan_flat_slots(system) -> np.ndarray | None:
    """Every dense flat slot the system's compiled plans can stamp.

    Returns ``None`` when any populated layer lacks a compiled plan —
    a per-device fallback could write outside the recorded pattern, so
    no trustworthy fixed structure exists.
    """
    plans = system.plans
    if plans is None or plans.static is None:
        return None
    if system._dynamic and plans.dynamic is None:
        return None
    if system._nonlinear and plans.nonlinear is None:
        return None
    size = system.size
    parts = [plans.static.rows * size + plans.static.cols]
    # gmin / extra-gmin regularisation and rescue ladders touch every
    # node diagonal.
    diag = system._gmin_idx
    parts.append(diag * size + diag)
    if plans.dynamic is not None:
        parts.append(plans.dynamic._mat_idx)
    if plans.nonlinear is not None:
        # Both MOSFET orientation variants: a swap mid-run must not
        # change the structure.
        parts.append(plans.nonlinear._A_idx_norm)
        parts.append(plans.nonlinear._A_idx_swap)
    return np.concatenate([np.asarray(p, dtype=np.intp) for p in parts])


class SparseBackend(SolverBackend):
    """CSR + SuperLU solves over a plan-derived fixed sparsity pattern.

    Bound to one :class:`~repro.spice.mna.System`: the pattern is the
    system topology's, cached on the system so reuse across transients
    (the DRAM runner chains cycles over one system) pays the symbolic
    construction once.
    """

    name = "sparse"
    sparse = True

    def __init__(self, system, pattern: SparsityPattern):
        self.system = system
        self.pattern = pattern
        sp, spla = _scipy()
        self._sp = sp
        self._splu = spla.splu
        # Reused CSR shell: data is re-gathered per factorization, the
        # structure arrays are shared with the pattern for the lifetime
        # of the backend (the symbolic half of factorization reuse).
        self._data = np.empty(pattern.nnz)
        self._matrix = sp.csr_matrix(
            (self._data, pattern.indices, pattern.indptr),
            shape=(pattern.size, pattern.size))

    @classmethod
    def from_system(cls, system) -> "SparseBackend | None":
        """Build (or fetch the system-cached) backend; ``None`` when
        scipy is missing or the plans cannot supply a pattern."""
        if not scipy_available():
            return None
        cached = getattr(system, "_sparse_backend", None)
        if cached is not None:
            return cached
        slots = _plan_flat_slots(system)
        if slots is None:
            return None
        backend = cls(system, SparsityPattern(system.size, slots))
        system._sparse_backend = backend
        return backend

    # ------------------------------------------------------------------
    def _count(self, name: str) -> None:
        self.system._count(name)

    def factorize(self, A: np.ndarray) -> SparseFactorization:
        """Gather the pattern values out of the dense scratch and factor.

        ``A`` is the (C-contiguous) dense assembly the drivers already
        build; only the O(nnz) gather and the sparse factorization run
        here, never an O(n^2) structure scan.
        """
        pat = self.pattern
        np.take(A.reshape(-1), pat.gather, out=self._data)
        try:
            lu = self._splu(self._sp.csc_matrix(self._matrix))
        except RuntimeError as exc:  # SuperLU: "Factor is exactly singular"
            raise SingularMatrixError(str(exc)) from None
        self._count("sparse_factor")
        return SparseFactorization(lu)

    def refactorize(self, fact: Factorization,
                    A: np.ndarray) -> SparseFactorization:
        """New values, same structure (the shared indptr/indices)."""
        return self.factorize(A)

    def solve(self, A: np.ndarray, b: np.ndarray) -> np.ndarray:
        x = self.factorize(A).solve(b)
        if not np.all(np.isfinite(x)):
            raise SingularMatrixError(
                "sparse solve produced non-finite values")
        return x


# ----------------------------------------------------------------------
# registry + selection policy
# ----------------------------------------------------------------------
#: name -> factory(system) -> SolverBackend | None (None = unavailable).
_REGISTRY: dict = {}


def register_backend(name: str, factory) -> None:
    """Register ``factory(system) -> SolverBackend | None`` under ``name``."""
    _REGISTRY[name] = factory


def available_backends() -> tuple[str, ...]:
    """Registered backend names (selection adds ``auto`` on top)."""
    return tuple(sorted(_REGISTRY))


register_backend("dense", lambda system: DENSE)
register_backend("sparse", SparseBackend.from_system)

#: Valid values for the process-wide default / the ``--backend`` flag.
BACKEND_CHOICES = ("auto", "dense", "sparse")

_BACKEND_DEFAULT = "auto"


def set_backend_default(name: str) -> str:
    """Set the process-wide backend selection (CLI ``--backend``).

    ``auto`` (the default) sizes the choice per system; an explicit name
    forces that backend where possible (sparse still degrades to dense
    when unavailable).  Returns the previous value.
    """
    global _BACKEND_DEFAULT
    if name not in BACKEND_CHOICES and name not in _REGISTRY:
        raise BackendError(
            f"unknown backend {name!r}; choose one of "
            f"{', '.join(BACKEND_CHOICES)}")
    previous = _BACKEND_DEFAULT
    _BACKEND_DEFAULT = name
    return previous


def backend_default() -> str:
    """Current process-wide backend selection."""
    return _BACKEND_DEFAULT


def resolve_lane_mode(system, n_lanes: int,
                      name: str | None = None) -> str:
    """Lane-batching mode for ``n_lanes`` stacked copies of ``system``.

    Returns ``"serial"`` (no batch is worth stacking), ``"dense"`` (the
    (L, n, n) dense lane kernel) or ``"sparse"`` (per-lane CSR data over
    the shared :class:`SparsityPattern`, factored by SuperLU).  The
    decision mirrors :func:`resolve_backend` — whatever backend the
    serial path would pick, the lane path batches *that* solver — plus
    the lane-count gate: a single lane never beats the serial kernel
    path, so it stays serial.
    """
    if n_lanes < 2:
        return "serial"
    backend = resolve_backend(name, system)
    return "sparse" if backend.sparse else "dense"


def resolve_backend(name: str | None, system) -> SolverBackend:
    """Resolve a backend request for one system.

    ``None`` reads the process-wide default.  ``auto`` applies the
    size/density policy (:data:`SPARSE_AUTO_MIN_SIZE`,
    :data:`SPARSE_AUTO_MAX_DENSITY`); explicit ``sparse`` skips the size
    gate but still degrades gracefully — scipy missing or no compiled
    pattern — to dense, recording the outcome in the system's kernel
    counters either way.
    """
    if name is None:
        name = _BACKEND_DEFAULT
    if name == "dense":
        return DENSE
    if name == "sparse":
        backend = SparseBackend.from_system(system)
        if backend is None:
            system._count("backend_sparse_degraded")
            return DENSE
        return backend
    if name == "auto":
        if system.size >= SPARSE_AUTO_MIN_SIZE and scipy_available():
            backend = SparseBackend.from_system(system)
            if backend is not None and \
                    backend.pattern.density <= SPARSE_AUTO_MAX_DENSITY:
                system._count("backend_auto_sparse")
                return backend
        if getattr(getattr(system, "circuit", None), "trimmed", False):
            # A trimmed array dropped back under the sparse threshold:
            # count it so benches can attribute the speedup to the
            # dense/lane fast paths the trim re-enabled.
            system._count("backend_trim_dense")
        return DENSE
    factory = _REGISTRY.get(name)
    if factory is None:
        raise BackendError(
            f"unknown backend {name!r}; choose one of "
            f"{', '.join(BACKEND_CHOICES)}")
    backend = factory(system)
    return DENSE if backend is None else backend
