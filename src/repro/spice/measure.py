"""Waveform measurements over transient results (SPICE ``.measure``).

Post-processing helpers mirroring the measurement statements of
production SPICE decks: threshold crossings, rise/fall times, settling
windows and extrema.  All operate on a
:class:`~repro.spice.transient.TransientResult` and linearly interpolate
between recorded points.
"""

from __future__ import annotations

import numpy as np

from repro.spice.errors import SpiceError
from repro.spice.transient import TransientResult


def cross_time(result: TransientResult, node: str, level: float, *,
               direction: str = "any", occurrence: int = 1,
               t_start: float = 0.0) -> float | None:
    """Time of the ``occurrence``-th crossing of ``level`` by ``node``.

    ``direction`` restricts the edge: ``"rise"``, ``"fall"`` or
    ``"any"``.  Returns ``None`` when the waveform never crosses (often
    the interesting outcome — e.g. a bit line that never develops).
    """
    if direction not in ("rise", "fall", "any"):
        raise SpiceError(f"unknown direction {direction!r}")
    if occurrence < 1:
        raise SpiceError("occurrence must be >= 1")
    t = result.time
    v = result.v(node)
    count = 0
    for i in range(1, len(t)):
        if t[i] < t_start:
            continue
        v0, v1 = v[i - 1], v[i]
        if v0 == v1:
            continue
        crossed_up = v0 < level <= v1
        crossed_dn = v0 > level >= v1
        if direction == "rise" and not crossed_up:
            continue
        if direction == "fall" and not crossed_dn:
            continue
        if not (crossed_up or crossed_dn):
            continue
        count += 1
        if count == occurrence:
            frac = (level - v0) / (v1 - v0)
            return float(t[i - 1] + frac * (t[i] - t[i - 1]))
    return None


def edge_time(result: TransientResult, node: str, *,
              low_frac: float = 0.1, high_frac: float = 0.9,
              rising: bool = True, t_start: float = 0.0) -> float | None:
    """10-90 % rise (or 90-10 % fall) time of the first full edge."""
    v = result.v(node)
    lo_v, hi_v = float(np.min(v)), float(np.max(v))
    span = hi_v - lo_v
    if span <= 0:
        return None
    lo_level = lo_v + low_frac * span
    hi_level = lo_v + high_frac * span
    if rising:
        t0 = cross_time(result, node, lo_level, direction="rise",
                        t_start=t_start)
        t1 = None if t0 is None else cross_time(
            result, node, hi_level, direction="rise", t_start=t0)
    else:
        t0 = cross_time(result, node, hi_level, direction="fall",
                        t_start=t_start)
        t1 = None if t0 is None else cross_time(
            result, node, lo_level, direction="fall", t_start=t0)
    if t0 is None or t1 is None:
        return None
    return t1 - t0


def settle_time(result: TransientResult, node: str, *, final: float,
                tolerance: float, t_start: float = 0.0) -> float | None:
    """Earliest time after which ``node`` stays within ``final ±
    tolerance`` until the end of the record."""
    t = result.time
    v = result.v(node)
    inside = np.abs(v - final) <= tolerance
    latest_outside = None
    for i in range(len(t)):
        if t[i] < t_start:
            continue
        if not inside[i]:
            latest_outside = i
    if latest_outside is None:
        return float(max(t_start, t[0]))
    if latest_outside == len(t) - 1:
        return None
    return float(t[latest_outside + 1])


def extremum(result: TransientResult, node: str, *,
             t_start: float = 0.0,
             t_stop: float | None = None) -> tuple[float, float, float,
                                                   float]:
    """``(v_min, t_min, v_max, t_max)`` of ``node`` within a window."""
    t = result.time
    v = result.v(node)
    mask = t >= t_start
    if t_stop is not None:
        mask &= t <= t_stop
    if not np.any(mask):
        raise SpiceError("empty measurement window")
    tw, vw = t[mask], v[mask]
    i_min = int(np.argmin(vw))
    i_max = int(np.argmax(vw))
    return (float(vw[i_min]), float(tw[i_min]),
            float(vw[i_max]), float(tw[i_max]))


def average(result: TransientResult, node: str, *, t_start: float = 0.0,
            t_stop: float | None = None) -> float:
    """Time-weighted average of ``node`` over a window."""
    t = result.time
    v = result.v(node)
    t_stop = t_stop if t_stop is not None else float(t[-1])
    if t_stop <= t_start:
        raise SpiceError("t_stop must exceed t_start")
    total = 0.0
    span = 0.0
    for i in range(1, len(t)):
        a, b = float(t[i - 1]), float(t[i])
        lo, hi = max(a, t_start), min(b, t_stop)
        if hi <= lo:
            continue
        # linear segment average over the clipped interval
        if b == a:
            continue
        va = v[i - 1] + (v[i] - v[i - 1]) * (lo - a) / (b - a)
        vb = v[i - 1] + (v[i] - v[i - 1]) * (hi - a) / (b - a)
        total += 0.5 * (va + vb) * (hi - lo)
        span += hi - lo
    if span == 0.0:
        raise SpiceError("measurement window contains no samples")
    return total / span
