"""Exception hierarchy for the circuit simulator."""


class SpiceError(Exception):
    """Base class for all simulator errors."""


class NetlistError(SpiceError):
    """The netlist is malformed (bad node, duplicate device, bad value...)."""


class ConvergenceError(SpiceError):
    """The Newton-Raphson iteration failed to converge.

    Carries the analysis context (time point, iteration count) so callers
    can report *where* the solver gave up.
    """

    def __init__(self, message, time=None, iterations=None):
        super().__init__(message)
        self.time = time
        self.iterations = iterations


class SingularMatrixError(SpiceError):
    """The MNA matrix is singular (usually a floating node or V-source loop)."""
