"""Exception hierarchy for the circuit simulator."""


class SpiceError(Exception):
    """Base class for all simulator errors."""


class NetlistError(SpiceError):
    """The netlist is malformed (bad node, duplicate device, bad value...)."""


class ConvergenceError(SpiceError):
    """The Newton-Raphson iteration failed to converge.

    Carries the analysis context so callers can report *where* the
    solver gave up:

    ``time``
        Analysis time point (seconds), or ``None`` for DC.
    ``iterations``
        Newton iterations spent before giving up.
    ``nodes``
        Names of the nodes still moving more than the tolerance on the
        last iteration — the non-converging subset of the circuit.
    ``rescue_trail``
        Rescue stages attempted before the failure was declared final
        (``"gmin"``, ``"source"``, ``"bisect"``...), in order.
    """

    def __init__(self, message, time=None, iterations=None, nodes=None,
                 rescue_trail=None):
        super().__init__(message)
        self.time = time
        self.iterations = iterations
        self.nodes = tuple(nodes) if nodes else ()
        self.rescue_trail = tuple(rescue_trail) if rescue_trail else ()


class SingularMatrixError(SpiceError):
    """The MNA matrix is singular (usually a floating node or V-source loop)."""
