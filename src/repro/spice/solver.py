"""Damped Newton-Raphson solver over an assembled MNA system.

:func:`newton_solve` is the primitive: one damped Newton iteration to
convergence or :class:`ConvergenceError`.  When plain Newton fails the
rescue ladder takes over:

* :func:`gmin_step_solve` — Gmin stepping: re-solve under a decreasing
  extra node-to-ground conductance, warm-starting each rung from the
  previous one.  The final rung is the exact system, so a successful
  rescue is a genuine solution.
* :func:`source_step_solve` — source stepping: ramp the independent
  sources from a fraction of their value up to 100 %, again finishing
  with the exact system.
* :func:`rescue_solve` — the full ladder (plain → gmin → source) with
  the trail of attempted stages reported to the caller and recorded on
  the raised error.
"""

from __future__ import annotations

import numpy as np

from repro.spice.errors import ConvergenceError, SingularMatrixError
from repro.spice.mna import System
from repro.spice.netlist import AnalysisContext

#: Maximum node-voltage change applied in one Newton update (volts).
DEFAULT_VSTEP_MAX = 1.0

#: Absolute node-voltage convergence tolerance (volts).
DEFAULT_VTOL = 1e-6

#: Gmin continuation ladder of the rescue path (ends on the exact system).
GMIN_RESCUE_LADDER = (1e-3, 1e-5, 1e-7, 1e-9, 0.0)

#: Source-stepping ramp of the rescue path (ends on the exact system).
SOURCE_RESCUE_STEPS = (0.1, 0.25, 0.5, 0.75, 0.9, 1.0)


def _failing_nodes(system: System, dx: np.ndarray, vtol: float,
                   limit: int = 6) -> list[str]:
    """Names of the nodes still moving more than ``vtol`` (worst first)."""
    n = system.num_nodes
    moves = np.abs(dx[:n])
    bad = [int(i) for i in np.argsort(moves)[::-1]
           if moves[i] > vtol][:limit]
    names = getattr(system.circuit, "node_names", None)
    if not names:
        return [f"node#{i}" for i in bad]
    return [names[i] for i in bad]


def newton_solve(system: System, A_step: np.ndarray, b_step: np.ndarray,
                 ctx: AnalysisContext, x0: np.ndarray, *,
                 max_iter: int = 100, vtol: float = DEFAULT_VTOL,
                 vstep_max: float = DEFAULT_VSTEP_MAX,
                 extra_gmin: float = 0.0) -> np.ndarray:
    """Solve the (possibly nonlinear) system for one analysis point.

    ``A_step``/``b_step`` are the per-step base from
    :meth:`System.build_step`; nonlinear devices are linearised around the
    running iterate each pass.  Updates are damped so no node voltage moves
    more than ``vstep_max`` per iteration, which keeps the exponential
    devices (diodes, sub-threshold MOSFETs) from overflowing.

    Returns the solution vector; raises :class:`ConvergenceError` or
    :class:`SingularMatrixError` on failure.
    """
    n = system.num_nodes
    if not system.has_nonlinear and extra_gmin == 0.0:
        try:
            return np.linalg.solve(A_step, b_step)
        except np.linalg.LinAlgError as exc:
            raise SingularMatrixError(str(exc)) from None

    x = x0.copy()
    dx = np.zeros_like(x)
    for _ in range(max_iter):
        ctx.x = x
        A, b = system.build_iteration(A_step, b_step, ctx, extra_gmin)
        try:
            x_new = np.linalg.solve(A, b)
        except np.linalg.LinAlgError as exc:
            raise SingularMatrixError(str(exc)) from None
        dx = x_new - x
        dv_max = float(np.max(np.abs(dx[:n]))) if n else 0.0
        if dv_max > vstep_max:
            dx = dx * (vstep_max / dv_max)
        x = x + dx
        if dv_max < vtol:
            return x
    nodes = _failing_nodes(system, dx, vtol)
    raise ConvergenceError(
        f"Newton iteration did not converge within {max_iter} iterations "
        f"(time={ctx.time!r}, moving nodes: {', '.join(nodes) or '-'})",
        time=ctx.time, iterations=max_iter, nodes=nodes)


def gmin_step_solve(system: System, A_step: np.ndarray,
                    b_step: np.ndarray, ctx: AnalysisContext,
                    x0: np.ndarray, *,
                    ladder=GMIN_RESCUE_LADDER, max_iter: int = 100,
                    vtol: float = DEFAULT_VTOL,
                    vstep_max: float = DEFAULT_VSTEP_MAX) -> np.ndarray:
    """Gmin stepping: continuation from a regularised system to the exact
    one.  Each rung warm-starts from the previous solution; rungs that
    fail keep the running iterate and move on, so only a failure of the
    *final* (exact) rung is fatal.
    """
    x = x0.copy()
    last_error: ConvergenceError | None = None
    for extra in ladder:
        try:
            x = newton_solve(system, A_step, b_step, ctx, x,
                             max_iter=max_iter, vtol=vtol,
                             vstep_max=vstep_max, extra_gmin=extra)
            last_error = None
        except ConvergenceError as exc:
            last_error = exc
    if last_error is not None:
        raise last_error
    return x


def source_step_solve(system: System, A_step: np.ndarray,
                      b_step: np.ndarray, ctx: AnalysisContext,
                      x0: np.ndarray, *,
                      steps=SOURCE_RESCUE_STEPS, max_iter: int = 100,
                      vtol: float = DEFAULT_VTOL,
                      vstep_max: float = DEFAULT_VSTEP_MAX) -> np.ndarray:
    """Source stepping: ramp the excitation vector up to the exact system.

    Scaling ``b_step`` scales every independent source (and, in
    transient, the companion-model history) — the intermediate solves
    only serve as warm starts, and the final step solves the exact
    system, so a returned solution is always genuine.
    """
    x = np.zeros_like(x0)
    for alpha in steps:
        x = newton_solve(system, A_step, alpha * b_step, ctx, x,
                         max_iter=max_iter, vtol=vtol,
                         vstep_max=vstep_max)
    return x


def rescue_solve(system: System, A_step: np.ndarray, b_step: np.ndarray,
                 ctx: AnalysisContext, x0: np.ndarray, *,
                 max_iter: int = 100, vtol: float = DEFAULT_VTOL,
                 vstep_max: float = DEFAULT_VSTEP_MAX
                 ) -> tuple[np.ndarray, tuple[str, ...]]:
    """Solve with the full rescue ladder: plain Newton, then Gmin
    stepping, then source stepping.

    Returns ``(solution, trail)`` where ``trail`` names the rescue stage
    that succeeded (``()`` when plain Newton was enough).  On total
    failure the raised :class:`ConvergenceError` carries the attempted
    trail in ``rescue_trail``.
    """
    try:
        return newton_solve(system, A_step, b_step, ctx, x0,
                            max_iter=max_iter, vtol=vtol,
                            vstep_max=vstep_max), ()
    except ConvergenceError:
        pass
    try:
        x = gmin_step_solve(system, A_step, b_step, ctx, x0,
                            max_iter=max_iter, vtol=vtol,
                            vstep_max=vstep_max)
        return x, ("gmin",)
    except ConvergenceError:
        pass
    try:
        x = source_step_solve(system, A_step, b_step, ctx, x0,
                              max_iter=max_iter, vtol=vtol,
                              vstep_max=vstep_max)
        return x, ("gmin", "source")
    except ConvergenceError as exc:
        raise ConvergenceError(
            f"no convergence after rescue ladder (gmin, source): {exc}",
            time=ctx.time, iterations=exc.iterations, nodes=exc.nodes,
            rescue_trail=("gmin", "source")) from exc
