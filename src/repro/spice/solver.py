"""Damped Newton-Raphson solver over an assembled MNA system.

:func:`newton_solve` is the primitive: one damped Newton iteration to
convergence or :class:`ConvergenceError`.  When plain Newton fails the
rescue ladder takes over:

* :func:`gmin_step_solve` — Gmin stepping: re-solve under a decreasing
  extra node-to-ground conductance, warm-starting each rung from the
  previous one.  The final rung is the exact system, so a successful
  rescue is a genuine solution.
* :func:`source_step_solve` — source stepping: ramp the independent
  sources from a fraction of their value up to 100 %, again finishing
  with the exact system.
* :func:`rescue_solve` — the full ladder (plain → gmin → source) with
  the trail of attempted stages reported to the caller and recorded on
  the raised error.
"""

from __future__ import annotations

import numpy as np

from repro.spice.errors import ConvergenceError, SingularMatrixError
from repro.spice.linalg import (LUFactorization, lu_factor,
                                solve_dense_nocheck)
from repro.spice.mna import System
from repro.spice.netlist import AnalysisContext

#: Maximum node-voltage change applied in one Newton update (volts).
DEFAULT_VSTEP_MAX = 1.0

#: Absolute node-voltage convergence tolerance (volts).
DEFAULT_VTOL = 1e-6

#: Gmin continuation ladder of the rescue path (ends on the exact system).
GMIN_RESCUE_LADDER = (1e-3, 1e-5, 1e-7, 1e-9, 0.0)

#: Source-stepping ramp of the rescue path (ends on the exact system).
SOURCE_RESCUE_STEPS = (0.1, 0.25, 0.5, 0.75, 0.9, 1.0)

#: Modified Newton refactors when the update norm stops shrinking by this.
MODIFIED_NEWTON_SHRINK = 0.5


def _failing_nodes(system: System, dx: np.ndarray, vtol: float,
                   limit: int = 6) -> list[str]:
    """Names of the nodes still moving more than ``vtol`` (worst first).

    Defensive: callers may hand a ``dx`` spanning branch rows beyond the
    node count, and a circuit's ``node_names`` may be shorter than the
    index set — unnamed rows fall back to ``node#i`` instead of blowing
    up inside error reporting.
    """
    n = min(system.num_nodes, len(dx))
    moves = np.abs(dx[:n])
    bad = [int(i) for i in np.argsort(moves)[::-1]
           if moves[i] > vtol][:limit]
    names = getattr(system.circuit, "node_names", None) or []
    return [names[i] if i < len(names) else f"node#{i}" for i in bad]


def newton_solve(system: System, A_step: np.ndarray, b_step: np.ndarray,
                 ctx: AnalysisContext, x0: np.ndarray, *,
                 max_iter: int = 100, vtol: float = DEFAULT_VTOL,
                 vstep_max: float = DEFAULT_VSTEP_MAX,
                 extra_gmin: float = 0.0,
                 linear_fact: LUFactorization | None = None,
                 modified: bool = False,
                 shrink: float = MODIFIED_NEWTON_SHRINK,
                 fast_solve: bool = False) -> np.ndarray:
    """Solve the (possibly nonlinear) system for one analysis point.

    ``A_step``/``b_step`` are the per-step base from
    :meth:`System.build_step`; nonlinear devices are linearised around the
    running iterate each pass.  Updates are damped so no node voltage moves
    more than ``vstep_max`` per iteration, which keeps the exponential
    devices (diodes, sub-threshold MOSFETs) from overflowing.

    ``linear_fact`` — a cached :class:`LUFactorization` of ``A_step``;
    used for the linear fast path so one factorization serves every step
    sharing the same base matrix.

    ``modified`` — opt-in modified Newton: reuse the last Jacobian's LU
    while the update norm is shrinking geometrically (by ``shrink`` per
    pass) and refactor on slowdown.  Converges to the same tolerance but
    the final iterate can differ from full Newton in the last ulps, so it
    is off by default (see the parity caveat in DESIGN.md).

    ``fast_solve`` — route dense solves through
    :func:`~repro.spice.linalg.solve_dense_nocheck` (bitwise-identical
    to ``np.linalg.solve``, minus its wrapper overhead).  The caller
    must hold :func:`~repro.spice.linalg.dense_errstate` so singular
    matrices raise instead of silently returning NaNs.  The kernel
    transient loop enables it (holding the errstate around its whole
    step loop); the legacy loop keeps the exact pre-kernel call so
    benchmarks measure the unmodified baseline.

    Returns the solution vector; raises :class:`ConvergenceError` or
    :class:`SingularMatrixError` on failure.
    """
    n = system.num_nodes
    if not system.has_nonlinear and extra_gmin == 0.0:
        if linear_fact is not None:
            return linear_fact.solve_fast(b_step)
        if fast_solve:
            return solve_dense_nocheck(A_step, b_step)
        try:
            return np.linalg.solve(A_step, b_step)
        except np.linalg.LinAlgError as exc:
            raise SingularMatrixError(str(exc)) from None

    x = x0.copy()
    dx = x
    fact: LUFactorization | None = None
    dv_prev: float | None = None
    build_iteration = system.build_iteration
    for _ in range(max_iter):
        ctx.x = x
        A, b = build_iteration(A_step, b_step, ctx, extra_gmin)
        if modified:
            if fact is None:
                fact = lu_factor(A)
                if dv_prev is not None:
                    system._count("newton_refactor")
            else:
                system._count("newton_jacobian_reuse")
            x_new = fact.solve_fast(b)
        elif fast_solve:
            x_new = solve_dense_nocheck(A, b)
        else:
            try:
                x_new = np.linalg.solve(A, b)
            except np.linalg.LinAlgError as exc:
                raise SingularMatrixError(str(exc)) from None
        # Reuse the solve output as the update buffer (x_new is fresh
        # every pass; in-place subtraction is bitwise the same).
        dx = np.subtract(x_new, x, out=x_new)
        dv_max = float(np.abs(dx[:n]).max()) if n else 0.0
        if dv_max > vstep_max:
            dx = dx * (vstep_max / dv_max)
        x = x + dx
        if dv_max < vtol:
            return x
        if modified and dv_prev is not None \
                and dv_max >= shrink * dv_prev:
            fact = None  # stale Jacobian: refactor next pass
        dv_prev = dv_max
    nodes = _failing_nodes(system, dx, vtol)
    raise ConvergenceError(
        f"Newton iteration did not converge within {max_iter} iterations "
        f"(time={ctx.time!r}, moving nodes: {', '.join(nodes) or '-'})",
        time=ctx.time, iterations=max_iter, nodes=nodes)


def gmin_step_solve(system: System, A_step: np.ndarray,
                    b_step: np.ndarray, ctx: AnalysisContext,
                    x0: np.ndarray, *,
                    ladder=GMIN_RESCUE_LADDER, max_iter: int = 100,
                    vtol: float = DEFAULT_VTOL,
                    vstep_max: float = DEFAULT_VSTEP_MAX) -> np.ndarray:
    """Gmin stepping: continuation from a regularised system to the exact
    one.  Each rung warm-starts from the previous solution; rungs that
    fail keep the running iterate and move on, so only a failure of the
    *final* (exact) rung is fatal.
    """
    x = x0.copy()
    last_error: ConvergenceError | None = None
    for extra in ladder:
        try:
            x = newton_solve(system, A_step, b_step, ctx, x,
                             max_iter=max_iter, vtol=vtol,
                             vstep_max=vstep_max, extra_gmin=extra)
            last_error = None
        except ConvergenceError as exc:
            last_error = exc
    if last_error is not None:
        raise last_error
    return x


def source_step_solve(system: System, A_step: np.ndarray,
                      b_step: np.ndarray, ctx: AnalysisContext,
                      x0: np.ndarray, *,
                      steps=SOURCE_RESCUE_STEPS, max_iter: int = 100,
                      vtol: float = DEFAULT_VTOL,
                      vstep_max: float = DEFAULT_VSTEP_MAX) -> np.ndarray:
    """Source stepping: ramp the excitation vector up to the exact system.

    Scaling ``b_step`` scales every independent source (and, in
    transient, the companion-model history) — the intermediate solves
    only serve as warm starts, and the final step solves the exact
    system, so a returned solution is always genuine.
    """
    x = np.zeros_like(x0)
    for alpha in steps:
        x = newton_solve(system, A_step, alpha * b_step, ctx, x,
                         max_iter=max_iter, vtol=vtol,
                         vstep_max=vstep_max)
    return x


def rescue_solve(system: System, A_step: np.ndarray, b_step: np.ndarray,
                 ctx: AnalysisContext, x0: np.ndarray, *,
                 max_iter: int = 100, vtol: float = DEFAULT_VTOL,
                 vstep_max: float = DEFAULT_VSTEP_MAX
                 ) -> tuple[np.ndarray, tuple[str, ...]]:
    """Solve with the full rescue ladder: plain Newton, then Gmin
    stepping, then source stepping.

    Returns ``(solution, trail)`` where ``trail`` names the rescue stage
    that succeeded (``()`` when plain Newton was enough).  On total
    failure the raised :class:`ConvergenceError` carries the attempted
    trail in ``rescue_trail``.
    """
    try:
        return newton_solve(system, A_step, b_step, ctx, x0,
                            max_iter=max_iter, vtol=vtol,
                            vstep_max=vstep_max), ()
    except ConvergenceError:
        pass
    try:
        x = gmin_step_solve(system, A_step, b_step, ctx, x0,
                            max_iter=max_iter, vtol=vtol,
                            vstep_max=vstep_max)
        return x, ("gmin",)
    except ConvergenceError:
        pass
    try:
        x = source_step_solve(system, A_step, b_step, ctx, x0,
                              max_iter=max_iter, vtol=vtol,
                              vstep_max=vstep_max)
        return x, ("gmin", "source")
    except ConvergenceError as exc:
        raise ConvergenceError(
            f"no convergence after rescue ladder (gmin, source): {exc}",
            time=ctx.time, iterations=exc.iterations, nodes=exc.nodes,
            rescue_trail=("gmin", "source")) from exc
