"""Damped Newton-Raphson solver over an assembled MNA system."""

from __future__ import annotations

import numpy as np

from repro.spice.errors import ConvergenceError, SingularMatrixError
from repro.spice.mna import System
from repro.spice.netlist import AnalysisContext

#: Maximum node-voltage change applied in one Newton update (volts).
DEFAULT_VSTEP_MAX = 1.0

#: Absolute node-voltage convergence tolerance (volts).
DEFAULT_VTOL = 1e-6


def newton_solve(system: System, A_step: np.ndarray, b_step: np.ndarray,
                 ctx: AnalysisContext, x0: np.ndarray, *,
                 max_iter: int = 100, vtol: float = DEFAULT_VTOL,
                 vstep_max: float = DEFAULT_VSTEP_MAX,
                 extra_gmin: float = 0.0) -> np.ndarray:
    """Solve the (possibly nonlinear) system for one analysis point.

    ``A_step``/``b_step`` are the per-step base from
    :meth:`System.build_step`; nonlinear devices are linearised around the
    running iterate each pass.  Updates are damped so no node voltage moves
    more than ``vstep_max`` per iteration, which keeps the exponential
    devices (diodes, sub-threshold MOSFETs) from overflowing.

    Returns the solution vector; raises :class:`ConvergenceError` or
    :class:`SingularMatrixError` on failure.
    """
    n = system.num_nodes
    if not system.has_nonlinear and extra_gmin == 0.0:
        try:
            return np.linalg.solve(A_step, b_step)
        except np.linalg.LinAlgError as exc:
            raise SingularMatrixError(str(exc)) from None

    x = x0.copy()
    for _ in range(max_iter):
        ctx.x = x
        A, b = system.build_iteration(A_step, b_step, ctx, extra_gmin)
        try:
            x_new = np.linalg.solve(A, b)
        except np.linalg.LinAlgError as exc:
            raise SingularMatrixError(str(exc)) from None
        dx = x_new - x
        dv_max = float(np.max(np.abs(dx[:n]))) if n else 0.0
        if dv_max > vstep_max:
            dx = dx * (vstep_max / dv_max)
        x = x + dx
        if dv_max < vtol:
            return x
    raise ConvergenceError(
        f"Newton iteration did not converge within {max_iter} iterations "
        f"(time={ctx.time!r})", time=ctx.time, iterations=max_iter)
