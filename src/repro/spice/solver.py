"""Damped Newton-Raphson solver over an assembled MNA system.

:func:`newton_solve` is the primitive: one damped Newton iteration to
convergence or :class:`ConvergenceError`.  When plain Newton fails the
rescue ladder takes over:

* :func:`gmin_step_solve` — Gmin stepping: re-solve under a decreasing
  extra node-to-ground conductance, warm-starting each rung from the
  previous one.  The final rung is the exact system, so a successful
  rescue is a genuine solution.
* :func:`source_step_solve` — source stepping: ramp the independent
  sources from a fraction of their value up to 100 %, again finishing
  with the exact system.
* :func:`rescue_solve` — the full ladder (plain → gmin → source) with
  the trail of attempted stages reported to the caller and recorded on
  the raised error.
"""

from __future__ import annotations

import numpy as np

from repro.spice.errors import ConvergenceError, SingularMatrixError
from repro.spice.linalg import (LUFactorization, lu_factor,
                                solve_dense_lanes, solve_dense_nocheck)
from repro.spice.mna import System
from repro.spice.netlist import AnalysisContext

#: Maximum node-voltage change applied in one Newton update (volts).
DEFAULT_VSTEP_MAX = 1.0

#: Absolute node-voltage convergence tolerance (volts).
DEFAULT_VTOL = 1e-6

#: Gmin continuation ladder of the rescue path (ends on the exact system).
GMIN_RESCUE_LADDER = (1e-3, 1e-5, 1e-7, 1e-9, 0.0)

#: Source-stepping ramp of the rescue path (ends on the exact system).
SOURCE_RESCUE_STEPS = (0.1, 0.25, 0.5, 0.75, 0.9, 1.0)

#: Modified Newton refactors when the update norm stops shrinking by this.
MODIFIED_NEWTON_SHRINK = 0.5

#: Extra convergence tightening of the lane (chord) iteration.  A full
#: Newton pass leaves a quadratically small error once ``dv < vtol``;
#: a chord pass only guarantees ~``dv`` itself, and that per-step error
#: accumulates over a chained transient — converging the chord loop a
#: decade deeper keeps lane trajectories well inside the documented
#: 1e-5 fp tolerance of the per-lane path (measured worst-case node
#: divergence over the Fig. 2 sweep: ~3e-6) while costing roughly one
#: cheap residual pass per step over the per-lane tolerance.
LANE_VTOL_FACTOR = 1e-1


def _failing_nodes(system: System, dx: np.ndarray, vtol: float,
                   limit: int = 6) -> list[str]:
    """Names of the nodes still moving more than ``vtol`` (worst first).

    Defensive: callers may hand a ``dx`` spanning branch rows beyond the
    node count, and a circuit's ``node_names`` may be shorter than the
    index set — unnamed rows fall back to ``node#i`` instead of blowing
    up inside error reporting.
    """
    n = min(system.num_nodes, len(dx))
    moves = np.abs(dx[:n])
    bad = [int(i) for i in np.argsort(moves)[::-1]
           if moves[i] > vtol][:limit]
    names = getattr(system.circuit, "node_names", None) or []
    return [names[i] if i < len(names) else f"node#{i}" for i in bad]


def newton_solve(system: System, A_step: np.ndarray, b_step: np.ndarray,
                 ctx: AnalysisContext, x0: np.ndarray, *,
                 max_iter: int = 100, vtol: float = DEFAULT_VTOL,
                 vstep_max: float = DEFAULT_VSTEP_MAX,
                 extra_gmin: float = 0.0,
                 linear_fact: LUFactorization | None = None,
                 modified: bool = False,
                 shrink: float = MODIFIED_NEWTON_SHRINK,
                 fast_solve: bool = False,
                 backend=None) -> np.ndarray:
    """Solve the (possibly nonlinear) system for one analysis point.

    ``A_step``/``b_step`` are the per-step base from
    :meth:`System.build_step`; nonlinear devices are linearised around the
    running iterate each pass.  Updates are damped so no node voltage moves
    more than ``vstep_max`` per iteration, which keeps the exponential
    devices (diodes, sub-threshold MOSFETs) from overflowing.

    ``linear_fact`` — a cached :class:`LUFactorization` of ``A_step``;
    used for the linear fast path so one factorization serves every step
    sharing the same base matrix.

    ``modified`` — opt-in modified Newton: reuse the last Jacobian's LU
    while the update norm is shrinking geometrically (by ``shrink`` per
    pass) and refactor on slowdown.  Converges to the same tolerance but
    the final iterate can differ from full Newton in the last ulps, so it
    is off by default (see the parity caveat in DESIGN.md).

    ``fast_solve`` — route dense solves through
    :func:`~repro.spice.linalg.solve_dense_nocheck` (bitwise-identical
    to ``np.linalg.solve``, minus its wrapper overhead).  The caller
    must hold :func:`~repro.spice.linalg.dense_errstate` so singular
    matrices raise instead of silently returning NaNs.  The kernel
    transient loop enables it (holding the errstate around its whole
    step loop); the legacy loop keeps the exact pre-kernel call so
    benchmarks measure the unmodified baseline.

    ``backend`` — a resolved :class:`~repro.spice.backends.SolverBackend`
    to route linear solves through, or ``None`` for the pre-backend
    dense path.  A dense backend resolution passes ``None`` here so the
    dense branches below stay byte-for-byte the original code (the
    bitwise-parity guarantee); only a sparse backend changes the solve
    kernel, with the documented fp tolerance.

    Returns the solution vector; raises :class:`ConvergenceError` or
    :class:`SingularMatrixError` on failure.
    """
    n = system.num_nodes
    sparse = backend is not None and backend.sparse
    if not system.has_nonlinear and extra_gmin == 0.0:
        if linear_fact is not None:
            return linear_fact.solve_fast(b_step)
        if sparse:
            return backend.solve(A_step, b_step)
        if fast_solve:
            return solve_dense_nocheck(A_step, b_step)
        try:
            return np.linalg.solve(A_step, b_step)
        except np.linalg.LinAlgError as exc:
            raise SingularMatrixError(str(exc)) from None

    x = x0.copy()
    dx = x
    fact: LUFactorization | None = None
    dv_prev: float | None = None
    build_iteration = system.build_iteration
    for _ in range(max_iter):
        ctx.x = x
        A, b = build_iteration(A_step, b_step, ctx, extra_gmin)
        if modified:
            if fact is None:
                fact = backend.factorize(A) if sparse else lu_factor(A)
                if dv_prev is not None:
                    system._count("newton_refactor")
            else:
                system._count("newton_jacobian_reuse")
            x_new = fact.solve_fast(b)
        elif sparse:
            # Full Newton refactors every pass on the dense path too
            # (np.linalg.solve factors internally); the sparse kernel
            # just swaps the factorization's complexity class.
            x_new = backend.solve(A, b)
        elif fast_solve:
            x_new = solve_dense_nocheck(A, b)
        else:
            try:
                x_new = np.linalg.solve(A, b)
            except np.linalg.LinAlgError as exc:
                raise SingularMatrixError(str(exc)) from None
        # Reuse the solve output as the update buffer (x_new is fresh
        # every pass; in-place subtraction is bitwise the same).
        dx = np.subtract(x_new, x, out=x_new)
        dv_max = float(np.abs(dx[:n]).max()) if n else 0.0
        if dv_max > vstep_max:
            dx = dx * (vstep_max / dv_max)
        x = x + dx
        if dv_max < vtol:
            return x
        if modified and dv_prev is not None \
                and dv_max >= shrink * dv_prev:
            fact = None  # stale Jacobian: refactor next pass
        dv_prev = dv_max
    nodes = _failing_nodes(system, dx, vtol)
    raise ConvergenceError(
        f"Newton iteration did not converge within {max_iter} iterations "
        f"(time={ctx.time!r}, moving nodes: {', '.join(nodes) or '-'})",
        time=ctx.time, iterations=max_iter, nodes=nodes)


def _try_solve_lanes(A: np.ndarray, b: np.ndarray
                     ) -> tuple[np.ndarray, np.ndarray]:
    """Batched solve that survives per-lane singular matrices.

    Returns ``(x, ok)`` where ``ok`` is a boolean mask over lanes.  The
    common case — no singular lane — is one gufunc call; when the batch
    raises, each lane is re-solved individually so only the offending
    lanes are flagged (their rows are left as zeros).  The caller must
    hold :func:`~repro.spice.linalg.dense_errstate`.
    """
    n_lanes = A.shape[0]
    try:
        return solve_dense_lanes(A, b), np.ones(n_lanes, dtype=bool)
    except SingularMatrixError:
        pass
    x = np.zeros_like(b)
    ok = np.zeros(n_lanes, dtype=bool)
    for k in range(n_lanes):
        try:
            x[k] = solve_dense_nocheck(A[k], b[k])
            ok[k] = True
        except SingularMatrixError:
            pass
    return x, ok


def _refactor_lanes(A: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Batched explicit inverses with per-lane singularity isolation.

    Returns ``(M, ok)``; a singular lane gets a zero matrix and a
    cleared ``ok`` flag.  The caller must hold
    :func:`~repro.spice.linalg.dense_errstate`.
    """
    n_lanes = A.shape[0]
    ok = np.ones(n_lanes, dtype=bool)
    try:
        return np.linalg.inv(A), ok
    except (np.linalg.LinAlgError, SingularMatrixError):
        pass
    M = np.zeros_like(A)
    for k in range(n_lanes):
        try:
            M[k] = np.linalg.inv(A[k])
        except (np.linalg.LinAlgError, SingularMatrixError):
            ok[k] = False
    return M, ok


def newton_solve_lanes(lanes, A_step: np.ndarray, b_step: np.ndarray,
                       x0: np.ndarray, lane_idx: np.ndarray, *,
                       temp_c: float, max_iter: int = 100,
                       vtol: float = DEFAULT_VTOL,
                       vstep_max: float = DEFAULT_VSTEP_MAX,
                       shrink: float = MODIFIED_NEWTON_SHRINK
                       ) -> tuple[np.ndarray, np.ndarray]:
    """Masked batched quasi-Newton over stacked same-topology systems.

    ``lanes`` is a :class:`~repro.spice.lanes.LaneSystem`; ``A_step`` is
    ``(n_batch, size, size)``, ``b_step`` and ``x0`` are
    ``(n_batch, size)``, and ``lane_idx`` maps batch rows to global lane
    positions (it keys the per-lane Jacobian-inverse cache on
    ``lanes``).

    The update is the residual form of the per-lane Newton step,
    ``dx = M (b - A x)``, where ``M`` is each lane's cached Jacobian
    inverse — the batched equivalent of :func:`newton_solve`'s opt-in
    modified mode.  While the update norm shrinks geometrically (by
    ``shrink`` per pass, the legacy criterion) the factorization is
    reused across iterations *and* time steps, so the LAPACK cost drops
    out of quiet stretches of the cycle entirely; a stale lane
    refactors and its next pass is a full Newton step.  Because the
    fixed point of the residual iteration is the exact solution of the
    step's nonlinear system, reuse affects only the convergence path,
    not the solution (within ``vtol`` — part of the lane kernel's
    documented fp tolerance).  Damping and the ``dv_max < vtol`` test
    match :func:`newton_solve` per lane.

    Returns ``(x, failed)``: the stacked solutions and a boolean mask
    over batch rows that did not converge (their rows hold the last
    iterate).  Nothing raises for a lane failure — the lane transient
    driver owns the continuation-retry / isolation policy.  The caller
    must hold :func:`~repro.spice.linalg.dense_errstate`.
    """
    n_batch = x0.shape[0]
    n = lanes.num_nodes
    failed = np.zeros(n_batch, dtype=bool)
    if not lanes.has_nonlinear:
        x, ok = _try_solve_lanes(A_step, b_step)
        failed[~ok] = True
        return x, failed

    M_cache, M_valid = lanes._M, lanes._M_valid
    size = lanes.size
    x = x0.copy()
    # The loop maintains trimmed working copies (iterate, step system,
    # cached inverses, previous update norm) and writes rows back into
    # ``x`` only when a lane converges, fails, or the budget runs out —
    # the hot path carries no per-iteration fancy indexing beyond the
    # staleness lookup.
    active = np.arange(n_batch)
    x_act = x0.copy()
    A_act, b_act = A_step, b_step
    M_act = M_cache[active]
    dv_prev = np.full(n_batch, np.inf)
    vtol = vtol * LANE_VTOL_FACTOR
    gidx = lane_idx[active]
    for _ in range(max_iter):
        stale = ~M_valid[gidx]
        if stale.any():
            # Full Jacobian assembly only for the lanes that refactor;
            # their next update is then an exact Newton step.
            A_full, _ = lanes.build_iteration_lanes(
                A_act[stale], b_act[stale], x_act[stale], temp_c)
            M_new, ok = _refactor_lanes(A_full)
            M_cache[gidx[stale]] = M_new
            M_valid[gidx[stale]] = ok
            M_act[stale] = M_new
            if not ok.all():
                bad_rows = np.flatnonzero(stale)[~ok]
                x[active[bad_rows]] = x_act[bad_rows]
                failed[active[bad_rows]] = True
                keep = np.ones(active.size, dtype=bool)
                keep[bad_rows] = False
                active, A_act, b_act, x_act, M_act, dv_prev = (
                    active[keep], A_act[keep], b_act[keep], x_act[keep],
                    M_act[keep], dv_prev[keep])
                if active.size == 0:
                    return x, failed
                gidx = gidx[keep]
        r = b_act - np.matmul(A_act, x_act[:, :, None])[:, :, 0]
        cur = lanes.residual_currents_lanes(x_act, temp_c)
        if cur is not None:
            r += cur[:, :size]
        dx = np.matmul(M_act, r[:, :, None])[:, :, 0]
        dv_max = np.abs(dx[:, :n]).max(axis=1) if n \
            else np.zeros(active.size)
        # Branch-free damping: the scale is exactly 1.0 (a bitwise
        # no-op multiply) whenever dv_max <= vstep_max.
        dx *= (vstep_max / np.maximum(dv_max, vstep_max))[:, None]
        x_act += dx
        conv = dv_max < vtol
        # Stagnating lanes refactor on the next pass (stale Jacobian).
        slow = ~conv & (dv_max >= shrink * dv_prev)
        if slow.any():
            M_valid[gidx[slow]] = False
        dv_prev = dv_max
        if conv.any():
            x[active[conv]] = x_act[conv]
            keep = ~conv
            active, A_act, b_act, x_act, M_act, dv_prev = (
                active[keep], A_act[keep], b_act[keep], x_act[keep],
                M_act[keep], dv_prev[keep])
            if active.size == 0:
                return x, failed
            gidx = gidx[keep]
    x[active] = x_act
    failed[active] = True
    return x, failed


def newton_solve_lanes_sparse(lanes, A_step: np.ndarray,
                              b_step: np.ndarray, x0: np.ndarray,
                              lane_idx: np.ndarray, *,
                              temp_c: float, max_iter: int = 100,
                              vtol: float = DEFAULT_VTOL,
                              vstep_max: float = DEFAULT_VSTEP_MAX,
                              shrink: float = MODIFIED_NEWTON_SHRINK
                              ) -> tuple[np.ndarray, np.ndarray]:
    """Masked batched quasi-Newton over stacked same-pattern CSR systems.

    The sparse twin of :func:`newton_solve_lanes`: ``lanes`` is a
    :class:`~repro.spice.lanes.SparseLaneSystem`, ``A_step`` holds the
    ``(n_batch, nnz)`` per-lane CSR data rows over the shared symbolic
    pattern, and the per-lane quasi-Newton cache stores SuperLU *numeric*
    factorizations instead of explicit inverses — one symbolic analysis,
    reused for every lane and every refactorization.  The chord
    iteration, branch-free damping, converged-lane dropout,
    stagnation-triggered refactorization and ``(x, failed)`` contract
    all mirror the dense kernel; the only structural differences are the
    batched CSR matvec for the residual and a per-lane ``lu.solve`` for
    the update (SuperLU has no batched triangular solve).

    SuperLU reports some singular systems by returning non-finite
    solutions rather than raising, so the stagnation test also treats a
    non-finite update norm as stale — the refactor then flags the lane
    properly.
    """
    n_batch = x0.shape[0]
    n = lanes.num_nodes
    failed = np.zeros(n_batch, dtype=bool)
    if not lanes.has_nonlinear:
        # No iteration corrects a stale exact solve, and the step data
        # changes with dt — factor fresh per call.
        x = np.zeros_like(b_step)
        for k in range(n_batch):
            lu = lanes.factor_lane(A_step[k])
            if lu is None:
                failed[k] = True
                continue
            xk = lu.solve(b_step[k])
            if np.all(np.isfinite(xk)):
                x[k] = xk
            else:
                failed[k] = True
        return x, failed

    M_cache, M_valid = lanes._M, lanes._M_valid
    size = lanes.size
    x = x0.copy()
    active = np.arange(n_batch)
    x_act = x0.copy()
    A_act, b_act = A_step, b_step
    gidx = lane_idx[active]
    M_act = [M_cache[g] for g in gidx]
    dv_prev = np.full(n_batch, np.inf)
    vtol = vtol * LANE_VTOL_FACTOR
    for _ in range(max_iter):
        stale = ~M_valid[gidx]
        if stale.any():
            A_full, _ = lanes.build_iteration_sparse(
                A_act[stale], b_act[stale], x_act[stale], temp_c)
            stale_rows = np.flatnonzero(stale)
            ok = np.ones(stale_rows.size, dtype=bool)
            for j, row in enumerate(stale_rows):
                lu = lanes.factor_lane(A_full[j])
                g = gidx[row]
                M_cache[g] = lu
                M_valid[g] = lu is not None
                M_act[row] = lu
                ok[j] = lu is not None
            if not ok.all():
                bad_rows = stale_rows[~ok]
                x[active[bad_rows]] = x_act[bad_rows]
                failed[active[bad_rows]] = True
                keep = np.ones(active.size, dtype=bool)
                keep[bad_rows] = False
                active, A_act, b_act, x_act, dv_prev = (
                    active[keep], A_act[keep], b_act[keep], x_act[keep],
                    dv_prev[keep])
                M_act = [m for m, k in zip(M_act, keep) if k]
                if active.size == 0:
                    return x, failed
                gidx = gidx[keep]
        r = b_act - lanes.matvec_lanes(A_act, x_act)
        cur = lanes.residual_currents_lanes(x_act, temp_c)
        if cur is not None:
            r += cur[:, :size]
        dx = np.empty_like(x_act)
        for j in range(active.size):
            dx[j] = M_act[j].solve(r[j])
        dv_max = np.abs(dx[:, :n]).max(axis=1) if n \
            else np.zeros(active.size)
        finite = np.isfinite(dv_max)
        dx[~finite] = 0.0
        dx *= (vstep_max / np.maximum(
            np.where(finite, dv_max, vstep_max), vstep_max))[:, None]
        x_act += dx
        conv = finite & (dv_max < vtol)
        slow = ~conv & (~finite | (dv_max >= shrink * dv_prev))
        if slow.any():
            M_valid[gidx[slow]] = False
        dv_prev = np.where(finite, dv_max, np.inf)
        if conv.any():
            x[active[conv]] = x_act[conv]
            keep = ~conv
            active, A_act, b_act, x_act, dv_prev = (
                active[keep], A_act[keep], b_act[keep], x_act[keep],
                dv_prev[keep])
            M_act = [m for m, k in zip(M_act, keep) if k]
            if active.size == 0:
                return x, failed
            gidx = gidx[keep]
    x[active] = x_act
    failed[active] = True
    return x, failed


def gmin_step_solve(system: System, A_step: np.ndarray,
                    b_step: np.ndarray, ctx: AnalysisContext,
                    x0: np.ndarray, *,
                    ladder=GMIN_RESCUE_LADDER, max_iter: int = 100,
                    vtol: float = DEFAULT_VTOL,
                    vstep_max: float = DEFAULT_VSTEP_MAX,
                    backend=None) -> np.ndarray:
    """Gmin stepping: continuation from a regularised system to the exact
    one.  Each rung warm-starts from the previous solution; rungs that
    fail keep the running iterate and move on, so only a failure of the
    *final* (exact) rung is fatal.
    """
    x = x0.copy()
    last_error: ConvergenceError | None = None
    for extra in ladder:
        try:
            x = newton_solve(system, A_step, b_step, ctx, x,
                             max_iter=max_iter, vtol=vtol,
                             vstep_max=vstep_max, extra_gmin=extra,
                             backend=backend)
            last_error = None
        except ConvergenceError as exc:
            last_error = exc
    if last_error is not None:
        raise last_error
    return x


def source_step_solve(system: System, A_step: np.ndarray,
                      b_step: np.ndarray, ctx: AnalysisContext,
                      x0: np.ndarray, *,
                      steps=SOURCE_RESCUE_STEPS, max_iter: int = 100,
                      vtol: float = DEFAULT_VTOL,
                      vstep_max: float = DEFAULT_VSTEP_MAX,
                      backend=None) -> np.ndarray:
    """Source stepping: ramp the excitation vector up to the exact system.

    Scaling ``b_step`` scales every independent source (and, in
    transient, the companion-model history) — the intermediate solves
    only serve as warm starts, and the final step solves the exact
    system, so a returned solution is always genuine.
    """
    x = np.zeros_like(x0)
    for alpha in steps:
        x = newton_solve(system, A_step, alpha * b_step, ctx, x,
                         max_iter=max_iter, vtol=vtol,
                         vstep_max=vstep_max, backend=backend)
    return x


def rescue_solve(system: System, A_step: np.ndarray, b_step: np.ndarray,
                 ctx: AnalysisContext, x0: np.ndarray, *,
                 max_iter: int = 100, vtol: float = DEFAULT_VTOL,
                 vstep_max: float = DEFAULT_VSTEP_MAX,
                 backend=None
                 ) -> tuple[np.ndarray, tuple[str, ...]]:
    """Solve with the full rescue ladder: plain Newton, then Gmin
    stepping, then source stepping.

    Returns ``(solution, trail)`` where ``trail`` names the rescue stage
    that succeeded (``()`` when plain Newton was enough).  On total
    failure the raised :class:`ConvergenceError` carries the attempted
    trail in ``rescue_trail``.
    """
    try:
        return newton_solve(system, A_step, b_step, ctx, x0,
                            max_iter=max_iter, vtol=vtol,
                            vstep_max=vstep_max, backend=backend), ()
    except ConvergenceError:
        pass
    try:
        x = gmin_step_solve(system, A_step, b_step, ctx, x0,
                            max_iter=max_iter, vtol=vtol,
                            vstep_max=vstep_max, backend=backend)
        return x, ("gmin",)
    except ConvergenceError:
        pass
    try:
        x = source_step_solve(system, A_step, b_step, ctx, x0,
                              max_iter=max_iter, vtol=vtol,
                              vstep_max=vstep_max, backend=backend)
        return x, ("gmin", "source")
    except ConvergenceError as exc:
        raise ConvergenceError(
            f"no convergence after rescue ladder (gmin, source): {exc}",
            time=ctx.time, iterations=exc.iterations, nodes=exc.nodes,
            rescue_trail=("gmin", "source")) from exc
