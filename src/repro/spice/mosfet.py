"""Level-1 MOSFET model with temperature-dependent mobility and threshold.

The model is the classic square-law device with three refinements that the
DRAM stress experiments need:

* **Smooth sub-threshold turn-off.**  The gate overdrive is softened with a
  ``softplus`` so the drain current decays exponentially below threshold
  instead of snapping to zero.  This keeps Newton iterations well-behaved
  and gives the access transistor a physically-plausible off-state.
* **Temperature-dependent mobility.**  ``kp(T) = kp * (T/Tnom)**mu_exp``
  (absolute temperatures, ``mu_exp ≈ -1.5`` for NMOS).  Higher temperature
  → lower mobility → lower drive current, which is the mechanism behind the
  paper's Fig. 4 write-weakening at high temperature.
* **Temperature-dependent threshold.**  ``|vth|(T) = vth0 + vth_tc*(T-Tnom)``
  with ``vth_tc < 0``: the threshold magnitude drops as temperature rises.

Both polarities are handled by a single set of equations evaluated in the
NMOS frame; PMOS devices mirror all voltages and the current direction.
Source/drain are swapped automatically when ``vds`` goes negative, so the
device is symmetric like the real structure.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

import numpy as np

from repro.spice.errors import NetlistError
from repro.spice.devices import thermal_voltage
from repro.spice.netlist import Device, Node, Stamper

_EXP_CLAMP = 60.0


@dataclass(frozen=True)
class MosfetParams:
    """Technology parameters of a MOSFET.

    Attributes
    ----------
    polarity:
        ``"n"`` or ``"p"``.
    kp:
        Transconductance factor ``mu * Cox`` at the nominal temperature
        (A/V^2).
    vth0:
        Threshold-voltage *magnitude* at the nominal temperature (V);
        positive for both polarities.
    lam:
        Channel-length modulation (1/V).
    n_ss:
        Sub-threshold ideality factor (dimensionless, >= 1).
    mu_exp:
        Mobility temperature exponent (``kp`` scales with
        ``(T/Tnom)**mu_exp`` in kelvin).
    vth_tc:
        Threshold temperature coefficient (V/K, applied to the magnitude).
    temp_nom_c:
        Nominal temperature in Celsius.
    """

    polarity: str = "n"
    kp: float = 120e-6
    vth0: float = 0.5
    lam: float = 0.05
    n_ss: float = 1.5
    mu_exp: float = -1.5
    vth_tc: float = -1.5e-3
    temp_nom_c: float = 27.0

    def __post_init__(self):
        if self.polarity not in ("n", "p"):
            raise NetlistError(f"polarity must be 'n' or 'p', "
                               f"got {self.polarity!r}")
        if self.kp <= 0 or self.vth0 <= 0 or self.n_ss < 1.0:
            raise NetlistError("kp and vth0 must be positive, n_ss >= 1")

    def with_(self, **kwargs) -> "MosfetParams":
        """Return a copy with some fields replaced."""
        return replace(self, **kwargs)

    def kp_at(self, temp_c: float) -> float:
        """Transconductance factor at ``temp_c``."""
        t_k = temp_c + 273.15
        tnom_k = self.temp_nom_c + 273.15
        return self.kp * (t_k / tnom_k) ** self.mu_exp

    def vth_at(self, temp_c: float) -> float:
        """Threshold-voltage magnitude at ``temp_c`` (clamped above 50 mV)."""
        vth = self.vth0 + self.vth_tc * (temp_c - self.temp_nom_c)
        return max(vth, 0.05)


#: Default NMOS / PMOS parameter sets for the synthetic DRAM technology.
NMOS_DEFAULT = MosfetParams(polarity="n", kp=120e-6, vth0=0.5, lam=0.05,
                            n_ss=1.5, mu_exp=-1.5, vth_tc=-1.5e-3)
PMOS_DEFAULT = MosfetParams(polarity="p", kp=40e-6, vth0=0.55, lam=0.05,
                            n_ss=1.5, mu_exp=-1.2, vth_tc=-1.2e-3)


def _softplus(x: float) -> float:
    """Numerically-stable ``log(1 + exp(x))``."""
    if x > _EXP_CLAMP:
        return x
    if x < -_EXP_CLAMP:
        return 0.0
    return math.log1p(math.exp(x))


def _sigmoid(x: float) -> float:
    if x > _EXP_CLAMP:
        return 1.0
    if x < -_EXP_CLAMP:
        return 0.0
    return 1.0 / (1.0 + math.exp(-x))


def mosfet_curves(params: MosfetParams, w_over_l: float, vgs: float,
                  vds: float, temp_c: float) -> tuple[float, float, float]:
    """Level-1 characteristics ``(ids, gm, gds)`` in the NMOS frame.

    Requires ``vds >= 0`` (the caller handles source/drain swapping and
    PMOS mirroring).  Shared by the :class:`Mosfet` device and the fast
    behavioral column model, so both use *identical* device physics.
    """
    beta = params.kp_at(temp_c) * w_over_l
    nvt = params.n_ss * thermal_voltage(temp_c)
    vov = vgs - params.vth_at(temp_c)
    u = vov / nvt
    veff = nvt * _softplus(u)      # smooth overdrive (-> vov when on)
    dveff = _sigmoid(u)            # d(veff)/d(vgs)
    clm = 1.0 + params.lam * vds
    if vds < veff:  # triode
        ids = beta * (veff - 0.5 * vds) * vds * clm
        gm = beta * vds * clm * dveff
        gds = beta * ((veff - vds) * clm
                      + (veff - 0.5 * vds) * vds * params.lam)
    else:  # saturation
        half_beta_veff2 = 0.5 * beta * veff * veff
        ids = half_beta_veff2 * clm
        gm = beta * veff * clm * dveff
        gds = half_beta_veff2 * params.lam
    return ids, gm, gds


def _softplus_each(u: np.ndarray) -> np.ndarray:
    """Elementwise :func:`_softplus` via the scalar math kernel.

    numpy's SIMD ``exp``/``log1p`` differ from libm in the last ulp;
    routing the (tiny) transcendental core through the scalar functions
    keeps the vectorized path bitwise-identical to the per-device one.
    """
    return np.fromiter((_softplus(float(v)) for v in u), float, len(u))


def _sigmoid_each(u: np.ndarray) -> np.ndarray:
    """Elementwise :func:`_sigmoid` via the scalar math kernel."""
    return np.fromiter((_sigmoid(float(v)) for v in u), float, len(u))


def mosfet_curves_vec(beta: np.ndarray, nvt: np.ndarray, vth: np.ndarray,
                      lam: np.ndarray, vgs: np.ndarray, vds: np.ndarray
                      ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Vectorized :func:`mosfet_curves` over per-device parameter arrays.

    ``beta``/``nvt``/``vth``/``lam`` are the temperature-resolved device
    parameters (``kp_at(T) * w/l``, ``n_ss * vt(T)``, ``vth_at(T)``,
    channel-length modulation); ``vgs``/``vds`` the NMOS-frame terminal
    voltages with ``vds >= 0``.  Element-for-element bitwise-identical
    to the scalar function: every arithmetic step mirrors its operation
    order and the transcendentals go through the same scalar kernels.
    """
    vov = vgs - vth
    u = vov / nvt
    veff = nvt * _softplus_each(u)
    dveff = _sigmoid_each(u)
    clm = 1.0 + lam * vds
    tri = vds < veff
    ids_tri = beta * (veff - 0.5 * vds) * vds * clm
    gm_tri = beta * vds * clm * dveff
    gds_tri = beta * ((veff - vds) * clm
                      + (veff - 0.5 * vds) * vds * lam)
    half_beta_veff2 = 0.5 * beta * veff * veff
    ids_sat = half_beta_veff2 * clm
    gm_sat = beta * veff * clm * dveff
    gds_sat = half_beta_veff2 * lam
    ids = np.where(tri, ids_tri, ids_sat)
    gm = np.where(tri, gm_tri, gm_sat)
    gds = np.where(tri, gds_tri, gds_sat)
    return ids, gm, gds


class Mosfet(Device):
    """A four-terminal-less (bulk tied) level-1 MOSFET.

    Terminals: drain, gate, source.  The device is quasi-static (no intrinsic
    capacitances); the DRAM netlist adds explicit node capacitances where
    dynamics matter.
    """

    def __init__(self, name: str, drain: Node, gate: Node, source: Node,
                 params: MosfetParams, w: float = 1e-6, l: float = 0.25e-6):
        super().__init__(name, (drain, gate, source))
        if w <= 0 or l <= 0:
            raise NetlistError(f"mosfet {name!r}: w and l must be positive")
        self.params = params
        self.w = float(w)
        self.l = float(l)

    @property
    def drain(self) -> Node:
        return self.node_list[0]

    @property
    def gate(self) -> Node:
        return self.node_list[1]

    @property
    def source(self) -> Node:
        return self.node_list[2]

    # ------------------------------------------------------------------
    # device equations (NMOS frame, vds >= 0)
    # ------------------------------------------------------------------
    def _eval(self, vgs: float, vds: float,
              temp_c: float) -> tuple[float, float, float]:
        """Return ``(ids, gm, gds)`` in the NMOS frame with ``vds >= 0``."""
        return mosfet_curves(self.params, self.w / self.l, vgs, vds, temp_c)

    def ids(self, vgs: float, vds: float, temp_c: float = 27.0) -> float:
        """Drain current for terminal voltages in the device's own polarity.

        For PMOS, ``vgs``/``vds`` are the usual (negative) values and the
        returned current is the (negative) drain-to-source current.
        """
        pol = 1.0 if self.params.polarity == "n" else -1.0
        vgs_n, vds_n = pol * vgs, pol * vds
        if vds_n >= 0:
            i, _, _ = self._eval(vgs_n, vds_n, temp_c)
            return pol * i
        # source/drain swap: vgd becomes the controlling voltage
        i, _, _ = self._eval(vgs_n - vds_n, -vds_n, temp_c)
        return -pol * i

    # ------------------------------------------------------------------
    # stamping
    # ------------------------------------------------------------------
    def stamp_nonlinear(self, st: Stamper) -> None:
        pol = 1.0 if self.params.polarity == "n" else -1.0
        vd = st.v(self.drain)
        vg = st.v(self.gate)
        vs = st.v(self.source)
        # Effective drain = terminal at higher potential in the NMOS frame.
        if pol * (vd - vs) >= 0.0:
            nd, ns = self.drain, self.source
            vnd, vns = vd, vs
        else:
            nd, ns = self.source, self.drain
            vnd, vns = vs, vd
        vgs = pol * (vg - vns)
        vds = pol * (vnd - vns)
        ids, gm, gds = self._eval(vgs, vds, st.ctx.temp_c)
        i_real = pol * ids
        # i(v) ≈ i_real + gds*(Δvds_real) + gm*(Δvgs_real); the conductance
        # and VCCS stamps supply the linear terms at the *new* iterate, so
        # the residual subtracts their value at the current iterate.
        residual = i_real - gds * (vnd - vns) - gm * (vg - vns)
        st.conductance(nd, ns, gds)
        st.transconductance(nd, ns, self.gate, ns, gm)
        st.current(nd, ns, residual)
