"""Modified-nodal-analysis system assembly.

:class:`System` compiles a :class:`~repro.spice.netlist.Circuit` into the
dense MNA matrices used by the solvers.  Assembly is split into layers so
each layer is recomputed only when needed:

* **static** — value-only stamps (resistors, V-source incidence rows),
  built once per analysis;
* **step** — step-size / history dependent stamps (capacitor companions)
  plus time-dependent source values, built once per time step;
* **iteration** — Newton-iterate dependent stamps (MOSFETs, diodes), built
  every Newton iteration.

Each layer is compiled at construction into a vectorized *stamp plan*
(:mod:`repro.spice.plans`) when its devices allow it; a plan-assembled
layer is bitwise-identical to the per-device path but runs as a handful
of array operations instead of a Python loop over devices.  Layers with
devices the compiler does not understand transparently fall back to the
classic ``stamp_*`` walk.

On top of the plans the system keeps two hot-loop caches:

* a **step-matrix cache** keyed by ``(dt, method)`` — the matrix part of
  the step base only depends on the step size, and transient grids are
  overwhelmingly uniform;
* a **factorization cache** (:class:`~repro.spice.linalg.FactorizationCache`)
  of LU factors of those step matrices, used by the linear fast path and
  the opt-in modified-Newton mode.

A small ``gmin`` conductance from every node to ground regularises floating
nodes (e.g. a storage node isolated behind an off transistor).
"""

from __future__ import annotations

import numpy as np

from repro.spice.devices import VoltageSource
from repro.spice.linalg import (FactorizationCache, LUFactorization,
                                lu_factor)
from repro.spice.netlist import AnalysisContext, Circuit, Device, Stamper
from repro.spice.plans import compile_plans

#: Default node-to-ground regularisation conductance (siemens).
DEFAULT_GMIN = 1e-12

#: Step matrices kept per system before the cache is cleared wholesale.
STEP_CACHE_MAX = 64


class System:
    """Compiled MNA representation of a circuit."""

    def __init__(self, circuit: Circuit, gmin: float = DEFAULT_GMIN,
                 use_plans: bool = True):
        circuit.finalize()
        self.circuit = circuit
        self.gmin = float(gmin)
        self.num_nodes = circuit.num_nodes
        self.size = circuit.system_size

        self._dynamic: list[Device] = []
        self._sources: list[Device] = []
        self._nonlinear: list[Device] = []
        for dev in circuit.devices:
            if isinstance(dev, VoltageSource):
                dev.bind_branch(circuit.branch_index(dev.name))
            cls = type(dev)
            if cls.stamp_dynamic is not Device.stamp_dynamic:
                self._dynamic.append(dev)
            if cls.stamp_source is not Device.stamp_source:
                self._sources.append(dev)
            if cls.stamp_nonlinear is not Device.stamp_nonlinear:
                self._nonlinear.append(dev)

        self._gmin_idx = np.arange(self.num_nodes)
        self._stamper = Stamper(None, None, self.num_nodes, None)
        #: Solver-kernel counters, flushed into the run diagnostics by the
        #: analyses that drive this system (see repro.diagnostics).
        self.kernel_counters: dict[str, int] = {}

        self.plans = None
        if use_plans:
            self.plans = compile_plans(
                circuit.devices, self._dynamic, self._sources,
                self._nonlinear, self.num_nodes, self.size)

        # hot-loop scratch: one contiguous buffer [A | scrapA | b | scrapB]
        # whose scrap slots absorb ground-terminal stamps the Stamper
        # would have dropped; the nonlinear plan scatters matrix and rhs
        # updates into it with a single add.at.
        n2 = self.size * self.size
        self._n2 = n2
        self._iter_scratch = np.empty(n2 + self.size + 2)
        self._iter_A = self._iter_scratch[:n2].reshape(self.size, self.size)
        self._iter_b = self._iter_scratch[n2 + 1:n2 + 1 + self.size]
        self._b_scratch = np.empty(self.size + 1)
        self._b_buf = np.empty(self.size)

        self._A_static = self._build_static()
        self._step_cache: dict = {}
        self._fact_cache = FactorizationCache()
        # Hot-loop shortcut: the compiled nonlinear plan, or None when the
        # iteration layer is empty or falls back to the per-device path.
        self._nl_plan = (self.plans.nonlinear
                         if self.plans is not None and self._nonlinear
                         else None)

    @property
    def has_nonlinear(self) -> bool:
        return bool(self._nonlinear)

    def _count(self, name: str, n: int = 1) -> None:
        self.kernel_counters[name] = self.kernel_counters.get(name, 0) + n

    def _build_static(self) -> np.ndarray:
        if self.plans is not None and self.plans.static is not None:
            A = self.plans.static.assemble(self.size)
            self._count("plan_static_assembly")
        else:
            A = np.zeros((self.size, self.size))
            st = Stamper(A, np.zeros(self.size), self.num_nodes,
                         AnalysisContext())
            for dev in self.circuit.devices:
                dev.stamp_static(st)
        if self.gmin > 0:
            A[self._gmin_idx, self._gmin_idx] += self.gmin
        return A

    # ------------------------------------------------------------------
    # step layer
    # ------------------------------------------------------------------
    @property
    def _step_plannable(self) -> bool:
        return (self.plans is not None
                and self.plans.dynamic is not None
                and self.plans.sources is not None)

    def step_matrix(self, dt, method: str) -> np.ndarray:
        """The step base matrix (static + companion conductances).

        Cached per ``(dt, method)`` — callers must treat the returned
        array as read-only.  Requires a plannable step layer.
        """
        key = (dt, method)
        A = self._step_cache.get(key)
        if A is None:
            A = self._A_static.copy()
            if dt is not None and self._dynamic:
                self.plans.dynamic.stamp_matrix(A, dt, method)
            if len(self._step_cache) >= STEP_CACHE_MAX:
                self._step_cache.clear()
            self._step_cache[key] = A
            self._count("step_matrix_build")
        else:
            kc = self.kernel_counters
            kc["step_matrix_reuse"] = kc.get("step_matrix_reuse", 0) + 1
        return A

    def step_rhs(self, ctx: AnalysisContext,
                 out: np.ndarray | None = None) -> np.ndarray:
        """The step base right-hand side, assembled into a reused buffer."""
        b = self._b_buf if out is None else out
        size = self.size
        dyn = (self.plans.dynamic
               if (ctx.dt is not None and self._dynamic) else None)
        if dyn is not None and dyn._use_vec:
            b[:] = 0.0
            pad = self._b_scratch
            pad[:size] = b
            pad[size] = 0.0
            dyn.stamp_rhs(pad, ctx.dt, ctx.method, ctx.x_prev)
            b[:] = pad[:size]
            self.plans.sources.apply(b, ctx.time)
            return b
        # Small device counts: accumulate in a plain Python list (with a
        # trailing scrap slot) — bitwise the same, minus the numpy per-op
        # overhead that dominates at DRAM-column sizes.
        bl = [0.0] * (size + 1)
        if dyn is not None:
            dyn.stamp_rhs_loop(bl, ctx.dt, ctx.method, ctx.x_prev)
        self.plans.sources.apply_loop(bl, ctx.time)
        b[:] = bl[:size]
        return b

    def step_factorization(self, dt, method: str,
                           backend=None) -> LUFactorization:
        """Cached factorization of the step base matrix (linear fast path).

        With a sparse ``backend`` the cache holds its factorizations
        under backend-qualified keys, so dense and sparse entries for
        the same ``(dt, method)`` coexist without collisions.
        """
        cache = self._fact_cache
        if backend is not None and backend.sparse:
            key = (dt, method, backend.name)
            factor = backend.factorize
        else:
            key = (dt, method)
            factor = lu_factor
        hit = key in cache._entries
        before = cache.evictions
        fact = cache.get(key, self.step_matrix(dt, method), factor=factor)
        self._count("lu_cache_hit" if hit else "lu_factor")
        if cache.evictions > before:
            self._count("lu_cache_eviction", cache.evictions - before)
        return fact

    def build_step(self, ctx: AnalysisContext) -> tuple[np.ndarray, np.ndarray]:
        """Assemble the per-time-step system (static + dynamic + sources).

        Returns freshly-allocated arrays the caller may mutate.
        """
        if self._step_plannable:
            A = self.step_matrix(ctx.dt, ctx.method).copy()
            b = np.zeros(self.size)
            self.step_rhs(ctx, out=b)
            self._count("plan_step_assembly")
            return A, b
        self._count("fallback_step_assembly")
        A = self._A_static.copy()
        b = np.zeros(self.size)
        st = self._stamper.rebind(A, b, ctx)
        for dev in self._dynamic:
            dev.stamp_dynamic(st)
        for dev in self._sources:
            dev.stamp_source(st)
        return A, b

    # ------------------------------------------------------------------
    # iteration layer
    # ------------------------------------------------------------------
    def build_iteration(self, A_step: np.ndarray, b_step: np.ndarray,
                        ctx: AnalysisContext,
                        extra_gmin: float = 0.0
                        ) -> tuple[np.ndarray, np.ndarray]:
        """Assemble the per-Newton-iteration system on top of a step base.

        With a compiled nonlinear plan the returned arrays are views into
        internal scratch buffers that are overwritten by the next call;
        consume them (or copy) before re-invoking.
        """
        nl = self._nl_plan
        if nl is not None:
            sc = self._iter_scratch
            A = self._iter_A
            b = self._iter_b
            np.copyto(A, A_step)
            np.copyto(b, b_step)
            sc[self._n2] = 0.0
            sc[-1] = 0.0
            nl.apply(sc, ctx.x, ctx.temp_c)
            kc = self.kernel_counters
            kc["plan_iteration_assembly"] = \
                kc.get("plan_iteration_assembly", 0) + 1
        else:
            A = A_step.copy()
            b = b_step.copy()
            st = self._stamper.rebind(A, b, ctx)
            for dev in self._nonlinear:
                dev.stamp_nonlinear(st)
            if self._nonlinear:
                self._count("fallback_iteration_assembly")
        if extra_gmin > 0:
            A[self._gmin_idx, self._gmin_idx] += extra_gmin
        return A, b

    def accept_step(self, x_prev: np.ndarray, x_now: np.ndarray, dt: float,
                    method: str) -> None:
        """Propagate integrator history (trapezoidal capacitors)."""
        if self.plans is not None and self.plans.dynamic is not None:
            self.plans.dynamic.accept_step(x_prev, x_now, dt, method)
            return
        for dev in self._dynamic:
            accept = getattr(dev, "accept_step", None)
            if accept is not None:
                accept(x_prev, x_now, dt, method)

    def source_waveforms(self):
        """All waveforms attached to independent sources (for breakpoints)."""
        return [dev.waveform for dev in self._sources
                if hasattr(dev, "waveform")]

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------
    def flush_kernel_counters(self) -> None:
        """Fold accumulated kernel counters into the run diagnostics."""
        if not self.kernel_counters:
            return
        from repro.diagnostics import diagnostics
        diagnostics().record_kernel_counters(self.kernel_counters)
        self.kernel_counters = {}
