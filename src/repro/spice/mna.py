"""Modified-nodal-analysis system assembly.

:class:`System` compiles a :class:`~repro.spice.netlist.Circuit` into the
dense MNA matrices used by the solvers.  Assembly is split into layers so
each layer is recomputed only when needed:

* **static** — value-only stamps (resistors, V-source incidence rows),
  built once per analysis;
* **step** — step-size / history dependent stamps (capacitor companions)
  plus time-dependent source values, built once per time step;
* **iteration** — Newton-iterate dependent stamps (MOSFETs, diodes), built
  every Newton iteration.

A small ``gmin`` conductance from every node to ground regularises floating
nodes (e.g. a storage node isolated behind an off transistor).
"""

from __future__ import annotations

import numpy as np

from repro.spice.devices import VoltageSource
from repro.spice.netlist import AnalysisContext, Circuit, Device, Stamper

#: Default node-to-ground regularisation conductance (siemens).
DEFAULT_GMIN = 1e-12


class System:
    """Compiled MNA representation of a circuit."""

    def __init__(self, circuit: Circuit, gmin: float = DEFAULT_GMIN):
        circuit.finalize()
        self.circuit = circuit
        self.gmin = float(gmin)
        self.num_nodes = circuit.num_nodes
        self.size = circuit.system_size

        self._dynamic: list[Device] = []
        self._sources: list[Device] = []
        self._nonlinear: list[Device] = []
        for dev in circuit.devices:
            if isinstance(dev, VoltageSource):
                dev.bind_branch(circuit.branch_index(dev.name))
            cls = type(dev)
            if cls.stamp_dynamic is not Device.stamp_dynamic:
                self._dynamic.append(dev)
            if cls.stamp_source is not Device.stamp_source:
                self._sources.append(dev)
            if cls.stamp_nonlinear is not Device.stamp_nonlinear:
                self._nonlinear.append(dev)

        self._A_static = self._build_static()

    @property
    def has_nonlinear(self) -> bool:
        return bool(self._nonlinear)

    def _build_static(self) -> np.ndarray:
        A = np.zeros((self.size, self.size))
        st = Stamper(A, np.zeros(self.size), self.num_nodes,
                     AnalysisContext())
        for dev in self.circuit.devices:
            dev.stamp_static(st)
        if self.gmin > 0:
            idx = np.arange(self.num_nodes)
            A[idx, idx] += self.gmin
        return A

    def build_step(self, ctx: AnalysisContext) -> tuple[np.ndarray, np.ndarray]:
        """Assemble the per-time-step system (static + dynamic + sources)."""
        A = self._A_static.copy()
        b = np.zeros(self.size)
        st = Stamper(A, b, self.num_nodes, ctx)
        for dev in self._dynamic:
            dev.stamp_dynamic(st)
        for dev in self._sources:
            dev.stamp_source(st)
        return A, b

    def build_iteration(self, A_step: np.ndarray, b_step: np.ndarray,
                        ctx: AnalysisContext,
                        extra_gmin: float = 0.0
                        ) -> tuple[np.ndarray, np.ndarray]:
        """Assemble the per-Newton-iteration system on top of a step base."""
        A = A_step.copy()
        b = b_step.copy()
        st = Stamper(A, b, self.num_nodes, ctx)
        for dev in self._nonlinear:
            dev.stamp_nonlinear(st)
        if extra_gmin > 0:
            idx = np.arange(self.num_nodes)
            A[idx, idx] += extra_gmin
        return A, b

    def accept_step(self, x_prev: np.ndarray, x_now: np.ndarray, dt: float,
                    method: str) -> None:
        """Propagate integrator history (trapezoidal capacitors)."""
        for dev in self._dynamic:
            accept = getattr(dev, "accept_step", None)
            if accept is not None:
                accept(x_prev, x_now, dt, method)

    def source_waveforms(self):
        """All waveforms attached to independent sources (for breakpoints)."""
        return [dev.waveform for dev in self._sources
                if hasattr(dev, "waveform")]
