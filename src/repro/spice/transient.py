"""Transient analysis.

The engine steps a fixed grid (``dt`` spacing) augmented with every source
waveform breakpoint, so ideal-ish edges land exactly on time points.  A step
whose Newton solve fails is bisected (exactly like the original strategy)
until it converges or the step floor is reached; at the floor a per-step
Gmin ramp (:func:`repro.spice.solver.gmin_step_solve`) is the last resort.
Every rescued step is recorded on the returned :class:`TransientResult`
(``rescues``) so callers can see the analysis needed help; a final stall
raises a :class:`ConvergenceError` carrying the stall time, the iteration
budget and the non-converging node set.

Initial conditions follow SPICE ``UIC`` semantics: the caller supplies node
voltages (default 0 V) and integration starts immediately — no DC operating
point is computed first.  The DRAM runner exploits this to chain operation
cycles, feeding each cycle's final state into the next.

Two step loops implement the same strategy:

* the **kernel fast path** (default) — compiled stamp plans, a per-``dt``
  step-matrix cache, a cursor walk of the grid with a bounded bisection
  stack, preallocated result buffers, and (for linear circuits) cached LU
  factorizations.  For circuits built from the standard device classes it
  is bitwise-identical to the legacy loop, except that linear circuits
  are solved through the factorization cache (same result to machine
  precision).
* the **legacy per-device loop** (``use_kernels=False``) — the original
  reference implementation, kept as the parity baseline for tests and
  benchmarks.
"""

from __future__ import annotations

import time as _time

import numpy as np

from repro.profiling import profiler
from repro.spice.backends import resolve_backend
from repro.spice.errors import ConvergenceError, SpiceError
from repro.spice.linalg import dense_errstate
from repro.spice.mna import DEFAULT_GMIN, System
from repro.spice.netlist import AnalysisContext, Circuit
from repro.spice.solver import gmin_step_solve, newton_solve
from repro.spice.waveforms import merge_breakpoints

#: Process-wide default for the kernel fast path (see set_kernels_default).
_KERNELS_DEFAULT = True


def set_kernels_default(enabled: bool) -> bool:
    """Flip the process-wide default for the transient kernel fast path.

    Returns the previous value.  Benchmarks use this to measure the
    legacy per-device loop without threading a flag through every layer;
    it is also the escape hatch if a custom device class interacts badly
    with the compiled plans.
    """
    global _KERNELS_DEFAULT
    previous = _KERNELS_DEFAULT
    _KERNELS_DEFAULT = bool(enabled)
    return previous


def kernels_enabled() -> bool:
    """Current process-wide default for the kernel fast path."""
    return _KERNELS_DEFAULT


#: Process-wide default lane width for batched sweeps (0 = lanes off).
_LANES_DEFAULT = 0


def set_lanes_default(width: int) -> int:
    """Set the process-wide default lane width for batched Rop sweeps.

    ``0`` (the default) keeps every sweep on the per-lane legacy path —
    the parity baseline, mirroring the ``use_kernels`` convention.
    ``width >= 2`` lets the batch executor group same-topology sweep
    points into multi-lane transients of at most ``width`` lanes (see
    :mod:`repro.spice.lanes`).  Returns the previous value.
    """
    global _LANES_DEFAULT
    previous = _LANES_DEFAULT
    _LANES_DEFAULT = max(0, int(width))
    return previous


def lanes_default() -> int:
    """Current process-wide default lane width (0 = lanes off)."""
    return _LANES_DEFAULT


class RescueEvent:
    """One transient step that only converged through a rescue stage."""

    __slots__ = ("time", "stage")

    def __init__(self, time: float, stage: str):
        self.time = time
        self.stage = stage

    def __repr__(self) -> str:
        return f"RescueEvent(time={self.time:.4g}, stage={self.stage!r})"


class TransientResult:
    """Recorded node voltages over time.

    Supports waveform lookup by node name, linear interpolation at arbitrary
    instants, and exporting the final state for cycle chaining.
    ``rescues`` lists the steps that needed a convergence rescue (empty
    for a cleanly-converged analysis).
    """

    def __init__(self, times: np.ndarray, data: np.ndarray,
                 node_names: list[str], final_x: np.ndarray,
                 rescues: list[RescueEvent] | None = None):
        self.time = times
        self._data = data
        self._col = {name: i for i, name in enumerate(node_names)}
        self.node_names = list(node_names)
        self.final_x = final_x
        self.rescues = list(rescues) if rescues else []

    def __len__(self) -> int:
        return len(self.time)

    def has_node(self, name: str) -> bool:
        return name in self._col

    def v(self, name: str) -> np.ndarray:
        """Full voltage waveform of node ``name``."""
        try:
            return self._data[:, self._col[name]]
        except KeyError:
            raise SpiceError(f"no recorded node named {name!r}") from None

    def at(self, name: str, t: float) -> float:
        """Linearly-interpolated voltage of ``name`` at time ``t``."""
        wave = self.v(name)
        times = self.time
        if t <= times[0]:
            return float(wave[0])
        if t >= times[-1]:
            return float(wave[-1])
        i = int(np.searchsorted(times, t, side="right"))
        t0, t1 = times[i - 1], times[i]
        frac = 0.0 if t1 == t0 else (t - t0) / (t1 - t0)
        return float(wave[i - 1] + frac * (wave[i] - wave[i - 1]))

    def final(self, name: str) -> float:
        """Voltage of ``name`` at the last time point."""
        return float(self.v(name)[-1])

    def final_state(self) -> dict[str, float]:
        """Map of node name → final voltage (for chaining transients)."""
        return {name: float(self._data[-1, col])
                for name, col in self._col.items()}


def _build_grid(tstop: float, dt: float, waveforms) -> list[float]:
    """Uniform grid plus waveform breakpoints, strictly increasing."""
    n_steps = max(1, int(round(tstop / dt)))
    grid = [tstop * i / n_steps for i in range(n_steps + 1)]
    extra = merge_breakpoints(waveforms, 0.0, tstop)
    if extra:
        merged = sorted(set(grid) | set(extra))
        # Drop points that crowd a neighbour closer than dt/1e6 to avoid
        # degenerate steps.
        tol = dt * 1e-6
        grid = [merged[0]]
        for t in merged[1:]:
            if t - grid[-1] > tol:
                grid.append(t)
        if grid[-1] != tstop:
            grid[-1] = tstop
    return grid


def transient(circuit: Circuit, tstop: float, dt: float, *,
              temp_c: float = 27.0, method: str = "be",
              initial: dict[str, float] | None = None,
              gmin: float = DEFAULT_GMIN,
              max_step_halvings: int = 14,
              use_kernels: bool | None = None,
              newton: str = "full",
              system: System | None = None,
              backend: str | None = None) -> TransientResult:
    """Run a transient analysis from 0 to ``tstop``.

    Parameters
    ----------
    circuit:
        The netlist to simulate.
    tstop, dt:
        Stop time and nominal step (seconds).
    temp_c:
        Simulation temperature (degrees Celsius) — fed to every
        temperature-aware device.
    method:
        ``"be"`` (backward Euler, default, very robust) or ``"trap"``
        (trapezoidal, second order).
    initial:
        ``{node_name: volts}`` initial node voltages; unlisted nodes start
        at 0 V.  SPICE ``UIC`` semantics.
    gmin:
        Node-to-ground regularisation conductance.
    max_step_halvings:
        How many times a non-converging step may be bisected before the
        analysis gives up.
    use_kernels:
        ``True``/``False`` selects the kernel fast path or the legacy
        per-device loop; ``None`` (default) follows the process-wide
        default (:func:`set_kernels_default`).
    newton:
        ``"full"`` (default) refactors the Jacobian every iteration;
        ``"modified"`` reuses the last LU while convergence is geometric
        (faster for large mostly-converged steps, final iterates can
        differ in the last ulps — see DESIGN.md).
    system:
        A prebuilt :class:`System` for ``circuit`` to reuse across calls
        (the DRAM runner chains cycles over one system, keeping its
        step-matrix and factorization caches warm).  Ignored when it does
        not match ``circuit``/``gmin`` or when the legacy loop is chosen.
        Callers that mutate device *values* in place must drop their
        cached system (the compiled plans would go stale).
    backend:
        Linear-solver backend name (``"auto"``, ``"dense"`` or
        ``"sparse"``; see :mod:`repro.spice.backends`); ``None``
        (default) follows the process-wide default
        (:func:`repro.spice.backends.set_backend_default`).  A dense
        resolution keeps the bitwise-identical dense path; the sparse
        backend only engages on the kernel fast path (the legacy loop is
        the dense parity baseline).
    """
    if tstop <= 0 or dt <= 0:
        raise SpiceError("tstop and dt must be positive")
    if method not in ("be", "trap"):
        raise SpiceError(f"unknown integration method {method!r}")
    if newton not in ("full", "modified"):
        raise SpiceError(f"unknown newton mode {newton!r}")
    if use_kernels is None:
        use_kernels = _KERNELS_DEFAULT

    if use_kernels:
        if (system is None or system.circuit is not circuit
                or system.gmin != gmin or system.plans is None
                or not circuit._finalized):
            system = System(circuit, gmin=gmin, use_plans=True)
    else:
        system = System(circuit, gmin=gmin, use_plans=False)

    node_names = circuit.node_names
    num_nodes = circuit.num_nodes

    x = np.zeros(system.size)
    if initial:
        for name, volts in initial.items():
            if name in ("0", "gnd", "GND", "ground"):
                continue
            if not circuit.has_node(name):
                raise SpiceError(f"initial condition for unknown node "
                                 f"{name!r}")
            x[circuit.node(name).index] = float(volts)

    grid = _build_grid(tstop, dt, system.source_waveforms())
    dt_floor = dt / (2 ** max_step_halvings)

    fast = (use_kernels and system._step_plannable)
    if fast:
        # Resolve the solver backend for this system.  Dense resolutions
        # hand the loop ``None`` so every pre-backend dense branch runs
        # untouched (the bitwise-parity guarantee); only a sparse
        # resolution threads a backend object into the solves.
        resolved = resolve_backend(backend, system)
        backend_obj = resolved if resolved.sparse else None
        result = _run_kernel_loop(system, circuit, grid, x, dt_floor,
                                  temp_c, method, node_names, num_nodes,
                                  newton, backend_obj)
    else:
        result = _run_legacy_loop(system, grid, x, dt_floor, temp_c,
                                  method, node_names, num_nodes)
    system.flush_kernel_counters()
    return result


def _run_kernel_loop(system: System, circuit: Circuit, grid: list[float],
                     x: np.ndarray, dt_floor: float, temp_c: float,
                     method: str, node_names: list[str], num_nodes: int,
                     newton: str, backend=None) -> TransientResult:
    """Kernel fast path: cursor grid walk + bounded bisection stack.

    The bisection stack replaces the legacy ``pending.insert(0)/pop(0)``
    list queue (O(n) per operation on the full grid): the grid is walked
    with an index cursor and only bisection midpoints are pushed onto a
    stack whose depth is bounded by ``max_step_halvings``.
    """
    n_grid = len(grid)
    capacity = n_grid + 8
    times = np.empty(capacity)
    data = np.empty((capacity, num_nodes))
    times[0] = 0.0
    data[0] = x[:num_nodes]
    count = 1
    rescues: list[RescueEvent] = []

    modified = newton == "modified"
    linear = not system.has_nonlinear
    ctx = AnalysisContext(time=0.0, dt=None, temp_c=temp_c, x=x,
                          x_prev=x, method=method)
    prof = profiler if profiler.enabled else None

    # One errstate entry serves every fast dense solve of the analysis
    # (newton_solve with fast_solve=True requires the caller to hold it;
    # entering it per step costs microseconds that add up).  Rescue paths
    # that go through np.linalg.solve stack their own errstate on top.
    with dense_errstate():
        return _step_kernel_loop(system, grid, x, dt_floor, ctx, method,
                                 node_names, num_nodes, modified, linear,
                                 prof, times, data, capacity, count,
                                 rescues, backend)


def _step_kernel_loop(system, grid, x, dt_floor, ctx, method, node_names,
                      num_nodes, modified, linear, prof, times, data,
                      capacity, count, rescues, backend=None):
    """The kernel step loop proper (see :func:`_run_kernel_loop`)."""
    n_grid = len(grid)
    t = 0.0
    gi = 1
    stack: list[float] = []  # pending bisection midpoints (LIFO)
    while True:
        if stack:
            t_target = stack[-1]
        elif gi < n_grid:
            t_target = grid[gi]
        else:
            break
        dt_step = t_target - t
        ctx.time = t_target
        ctx.dt = dt_step
        ctx.x = x
        ctx.x_prev = x
        if prof:
            _t0 = _time.perf_counter()
        A_step = system.step_matrix(dt_step, method)
        b_step = system.step_rhs(ctx)
        fact = (system.step_factorization(dt_step, method, backend)
                if linear else None)
        if prof:
            _t1 = _time.perf_counter()
            prof.add("transient.assemble_step", _t1 - _t0)
        try:
            x_new = newton_solve(system, A_step, b_step, ctx, x,
                                 linear_fact=fact, modified=modified,
                                 fast_solve=True, backend=backend)
        except ConvergenceError as exc:
            # Step bisection first (identical to the plain path, so runs
            # that never needed a rescue are bit-identical), then — once
            # the step floor blocks further bisection — a per-step Gmin
            # ramp as the last resort before giving up.
            if dt_step / 2 >= dt_floor:
                stack.append(t + dt_step / 2)
                continue
            try:
                x_new = gmin_step_solve(system, A_step, b_step, ctx, x,
                                        backend=backend)
            except ConvergenceError as gmin_exc:
                nodes = gmin_exc.nodes or exc.nodes
                raise ConvergenceError(
                    f"transient stalled at t={t:.4g}s: step below floor "
                    f"{dt_floor:.3g}s still fails to converge even with "
                    f"a Gmin ramp (moving nodes: "
                    f"{', '.join(nodes) or '-'})",
                    time=t, iterations=gmin_exc.iterations, nodes=nodes,
                    rescue_trail=("bisect", "gmin")) from None
            rescues.append(RescueEvent(t_target, "gmin"))
            _record_rescue("gmin")
        if prof:
            prof.add("transient.solve", _time.perf_counter() - _t1)
            prof.count("transient.steps")
        system.accept_step(x, x_new, dt_step, method)
        x = x_new
        t = t_target
        if stack:
            stack.pop()
        else:
            gi += 1
        if count == capacity:
            capacity *= 2
            times = np.concatenate([times, np.empty(capacity - count)])
            grown = np.empty((capacity, num_nodes))
            grown[:count] = data[:count]
            data = grown
        times[count] = t
        data[count] = x[:num_nodes]
        count += 1

    return TransientResult(times[:count].copy(), data[:count].copy(),
                           node_names, x, rescues=rescues)


def _run_legacy_loop(system: System, grid: list[float], x: np.ndarray,
                     dt_floor: float, temp_c: float, method: str,
                     node_names: list[str], num_nodes: int
                     ) -> TransientResult:
    """The original per-device step loop (parity baseline)."""
    times = [0.0]
    rows = [x[:num_nodes].copy()]
    rescues: list[RescueEvent] = []

    t = 0.0
    pending = list(grid[1:])
    while pending:
        t_target = pending[0]
        dt_step = t_target - t
        ctx = AnalysisContext(time=t_target, dt=dt_step, temp_c=temp_c,
                              x=x, x_prev=x, method=method)
        A_step, b_step = system.build_step(ctx)
        try:
            x_new = newton_solve(system, A_step, b_step, ctx, x)
        except ConvergenceError as exc:
            if dt_step / 2 >= dt_floor:
                pending.insert(0, t + dt_step / 2)
                continue
            try:
                x_new = gmin_step_solve(system, A_step, b_step, ctx, x)
            except ConvergenceError as gmin_exc:
                nodes = gmin_exc.nodes or exc.nodes
                raise ConvergenceError(
                    f"transient stalled at t={t:.4g}s: step below floor "
                    f"{dt_floor:.3g}s still fails to converge even with "
                    f"a Gmin ramp (moving nodes: "
                    f"{', '.join(nodes) or '-'})",
                    time=t, iterations=gmin_exc.iterations, nodes=nodes,
                    rescue_trail=("bisect", "gmin")) from None
            rescues.append(RescueEvent(t_target, "gmin"))
            _record_rescue("gmin")
        system.accept_step(x, x_new, dt_step, method)
        x = x_new
        t = t_target
        pending.pop(0)
        times.append(t)
        rows.append(x[:num_nodes].copy())

    return TransientResult(np.asarray(times), np.asarray(rows),
                           node_names, x, rescues=rescues)


def _record_rescue(stage: str) -> None:
    """Count a successful rescue in the run diagnostics."""
    from repro.diagnostics import diagnostics
    diagnostics().record_rescue(stage)
