"""Batched multi-lane transient kernel for defect-resistance sweeps.

Every sweep in the paper (result planes, ``Vsa``/settle curves, BR
identification) re-solves one column topology where only the defect
resistor's value changes.  This module stacks N such systems — one
*lane* per ``Rop`` value — into 3-D stamp/solution arrays built from the
compiled plans of :mod:`repro.spice.plans` and advances all of them with
a single masked Newton loop per timestep
(:func:`~repro.spice.solver.newton_solve_lanes`), so the per-step cost
is one batched LAPACK call instead of N sequential solves.

Policy, mirroring the PR 3 ``use_kernels`` convention:

* lanes are **opt-in** (``repro.spice.transient.set_lanes_default``);
  the per-lane path stays the default and the parity baseline;
* lane results carry a documented **fp tolerance** (~1e-5 V) instead of
  the bitwise guarantee — the batched scatter sums device deltas apart
  from the base buffer and the device math uses numpy's SIMD
  transcendentals (see DESIGN.md section 5d);
* there is **no in-batch bisection**: a lane whose Newton fails is
  first retried with a *continuation warm start* (initial guess copied
  from its nearest already-converged sweep neighbour), and if that also
  fails it is **isolated** — dropped from the batch and left for the
  caller to re-run on the legacy per-lane path with its full rescue
  ladder, so one pathological ``Rop`` cannot poison the batch.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.profiling import profiler
from repro.spice.backends import SparseBackend, resolve_backend
from repro.spice.errors import SpiceError
from repro.spice.linalg import dense_errstate
from repro.spice.mna import STEP_CACHE_MAX, System
from repro.spice.solver import (DEFAULT_VSTEP_MAX, newton_solve_lanes,
                                newton_solve_lanes_sparse)
from repro.spice.transient import TransientResult, _build_grid


class LaneError(SpiceError):
    """The circuit/plan combination cannot run as a lane batch."""


def _validated_resistances(resistances) -> list[float]:
    """The per-lane ``Rop`` values as floats, validated."""
    rs = [float(r) for r in resistances]
    if not rs:
        raise LaneError("lane batch needs at least one resistance")
    if any(r <= 0 for r in rs):
        raise LaneError("lane resistances must be positive")
    return rs


class LaneSystem:
    """N stacked copies of one compiled :class:`System`, one per lane.

    The template system provides the compiled plans; per-lane state is
    limited to the static matrices (defect-resistor entries re-valued
    through the static plan's device span) and the capacitor history.
    The template's device objects are never mutated, so a ``LaneSystem``
    can share its :class:`System` with the per-lane legacy path.
    """

    #: Dense lane systems batch through :func:`~repro.spice.solver
    #: .newton_solve_lanes`; :class:`SparseLaneSystem` flips this.
    sparse = False

    def __init__(self, system: System, resistances,
                 device_name: str):
        plans = system.plans
        if plans is None or plans.static is None \
                or not system._step_plannable:
            raise LaneError(
                "lane batching needs fully plan-compiled static, dynamic "
                "and source layers")
        if system.has_nonlinear and system._nl_plan is None:
            raise LaneError(
                "lane batching needs a plan-compiled nonlinear layer")
        span = plans.static.device_span(device_name)
        if span is None:
            raise LaneError(
                f"device {device_name!r} has no static-plan span to "
                f"re-value per lane")
        self.system = system
        self.device_name = device_name
        self.size = system.size
        self.num_nodes = system.num_nodes
        self._span = span
        base_vals = plans.static.vals
        # Resistor static stamps are (g, g, -g, -g) with g = 1/R > 0, so
        # the signs are exactly +-1 and per-lane values are exactly
        # signs / R — each lane's static matrix is bitwise identical to
        # a per-lane rebuild at that resistance.
        self._signs = np.sign(base_vals[span[0]:span[1]])
        n2 = self.size * self.size
        self._n2 = n2
        self._scratch_cache: dict[int, np.ndarray] = {}
        self.set_resistances(resistances)

    @property
    def n_lanes(self) -> int:
        return self._statics.shape[0]

    @property
    def has_nonlinear(self) -> bool:
        return self.system.has_nonlinear

    def set_resistances(self, resistances) -> None:
        """Rebuild the per-lane static matrices for a new ``Rop`` set.

        Resets the step-matrix cache and the per-lane capacitor history
        (lanes are only retargeted between transients, never mid-run).
        """
        rs = _validated_resistances(resistances)
        self.resistances = tuple(rs)
        plans = self.system.plans
        s0, s1 = self._span
        size = self.size
        statics = np.empty((len(rs), size, size))
        vals = plans.static.vals.copy()
        gmin = self.system.gmin
        gmin_idx = self.system._gmin_idx
        for k, r in enumerate(rs):
            vals[s0:s1] = self._signs * (1.0 / r)
            A = plans.static.assemble_with_vals(size, vals)
            if gmin > 0:
                A[gmin_idx, gmin_idx] += gmin
            statics[k] = A
        self._statics = statics
        self._step_cache: dict = {}
        dyn = plans.dynamic
        self._i_prev2 = (dyn.initial_history_lanes(len(rs))
                         if dyn is not None else None)
        # Per-lane cached Jacobian inverses for the quasi-Newton loop
        # (see solver.newton_solve_lanes); all stale until first use.
        self._M = np.zeros((len(rs), size, size))
        self._M_valid = np.zeros(len(rs), dtype=bool)

    # ------------------------------------------------------------------
    # step layer
    # ------------------------------------------------------------------
    def step_matrix_lanes(self, dt: float, method: str) -> np.ndarray:
        """Per-lane step base matrices, cached per ``(dt, method)``.

        The companion-conductance delta is lane-independent, so it is
        stamped once into a zero matrix and broadcast-added onto the
        per-lane statics.  Callers must treat the result as read-only.
        """
        key = (dt, method)
        A = self._step_cache.get(key)
        if A is None:
            dyn = self.system.plans.dynamic
            if dt is not None and dyn is not None:
                delta = np.zeros((self.size, self.size))
                dyn.stamp_matrix(delta, dt, method)
                A = self._statics + delta
            else:
                A = self._statics.copy()
            if len(self._step_cache) >= STEP_CACHE_MAX:
                self._step_cache.clear()
            self._step_cache[key] = A
        return A

    def step_rhs_lanes(self, t: float, dt: float, method: str,
                       x_prev2: np.ndarray) -> np.ndarray:
        """Per-lane step right-hand sides at time ``t``.

        Companion currents are lane-dependent (they read each lane's
        previous solution); the independent sources are shared and
        broadcast onto every lane.
        """
        size = self.size
        n = x_prev2.shape[0]
        plans = self.system.plans
        b2 = np.zeros((n, size + 1))
        dyn = plans.dynamic
        if dt is not None and dyn is not None:
            dyn.stamp_rhs_lanes(b2, dt, method, x_prev2, self._i_prev2)
        b_src = np.zeros(size)
        plans.sources.apply(b_src, t)
        b = b2[:, :size]
        b += b_src
        return b

    # ------------------------------------------------------------------
    # iteration layer
    # ------------------------------------------------------------------
    def build_iteration_lanes(self, A_step2: np.ndarray,
                              b_step2: np.ndarray, x2: np.ndarray,
                              temp_c: float
                              ) -> tuple[np.ndarray, np.ndarray]:
        """Batched :meth:`System.build_iteration`: per-lane Jacobians and
        right-hand sides linearised around the stacked iterates.

        Returns views into a reused scratch buffer — consume them before
        the next call with the same batch size.
        """
        n = x2.shape[0]
        n2, size = self._n2, self.size
        sc = self._scratch_cache.get(n)
        if sc is None:
            sc = np.empty((n, n2 + size + 2))
            self._scratch_cache[n] = sc
        sc[:, :n2] = A_step2.reshape(n, n2)
        sc[:, n2] = 0.0
        sc[:, n2 + 1:n2 + 1 + size] = b_step2
        sc[:, -1] = 0.0
        nl = self.system._nl_plan
        if nl is not None:
            nl.apply_lanes(sc, x2, temp_c)
        A = sc[:, :n2].reshape(n, size, size)
        b = sc[:, n2 + 1:n2 + 1 + size]
        return A, b

    def residual_currents_lanes(self, x2: np.ndarray,
                                temp_c: float) -> np.ndarray | None:
        """True nonlinear device currents at ``x2``, padded — the cheap
        per-chord-iteration half of the residual
        ``b_step + I_nl(x) - A_step x`` (see
        :func:`~repro.spice.solver.newton_solve_lanes`).  Returns
        ``(n_lanes, size + 1)`` (last column is the ground scrap), or
        ``None`` for a linear system."""
        nl = self.system._nl_plan
        if nl is None:
            return None
        return nl.residual_lanes(x2, temp_c)

    def accept_step_lanes(self, x_prev2: np.ndarray, x_now2: np.ndarray,
                          dt: float, method: str) -> None:
        """Propagate the per-lane integrator history."""
        dyn = self.system.plans.dynamic
        if dyn is not None:
            self._i_prev2 = dyn.accept_step_lanes(
                x_prev2, x_now2, dt, method, self._i_prev2)


class SparseLaneSystem(LaneSystem):
    """N stacked CSR copies of one compiled :class:`System`.

    The sparse counterpart of :class:`LaneSystem` for systems the
    backend policy resolves sparse (untrimmed arrays, forced
    ``--backend sparse``): every lane shares the plan-derived
    :class:`~repro.spice.backends.SparsityPattern` — the same symbolic
    structure by construction, since all lanes come from one compiled
    stamp plan — so per-lane state shrinks from ``(n, n)`` dense
    matrices to ``(nnz,)`` CSR data rows, and the quasi-Newton cache
    holds per-lane SuperLU *numeric* factorizations over that single
    shared symbolic pattern (refreshed only on stagnation, exactly like
    the dense path's cached inverses — see
    :func:`~repro.spice.solver.newton_solve_lanes_sparse`).

    ``counters`` accumulates the sparse bookkeeping
    (``lane_symbolic_reuse``: numeric factorizations that reused the
    shared pattern) and is drained into each
    :func:`lane_transient`'s counter dict.
    """

    sparse = True

    def __init__(self, system: System, resistances, device_name: str,
                 backend: SparseBackend | None = None):
        if backend is None:
            backend = SparseBackend.from_system(system)
        if backend is None or not getattr(backend, "sparse", False):
            raise LaneError(
                "sparse lane batching needs scipy and a plan-derived "
                "sparsity pattern")
        pattern = backend.pattern
        # The batched CSR matvec segments rows with np.add.reduceat,
        # which mis-sums empty segments; an MNA row with no entries is
        # singular anyway, so refuse and let the engine degrade to the
        # serial sparse path.
        if np.any(np.diff(pattern.indptr) == 0):
            raise LaneError(
                "sparsity pattern has empty matrix rows; the batched "
                "sparse kernel cannot stack this system")
        self._backend = backend
        self._pattern = pattern
        self.counters: dict[str, int] = {}
        super().__init__(system, resistances, device_name)

    def set_resistances(self, resistances) -> None:
        """Rebuild the per-lane CSR data rows for a new ``Rop`` set."""
        rs = _validated_resistances(resistances)
        self.resistances = tuple(rs)
        plans = self.system.plans
        s0, s1 = self._span
        size = self.size
        pat = self._pattern
        data = np.empty((len(rs), pat.nnz))
        vals = plans.static.vals.copy()
        gmin = self.system.gmin
        gmin_idx = self.system._gmin_idx
        for k, r in enumerate(rs):
            vals[s0:s1] = self._signs * (1.0 / r)
            A = plans.static.assemble_with_vals(size, vals)
            if gmin > 0:
                A[gmin_idx, gmin_idx] += gmin
            np.take(A.reshape(-1), pat.gather, out=data[k])
        self._statics = data
        self._step_cache = {}
        dyn = plans.dynamic
        self._i_prev2 = (dyn.initial_history_lanes(len(rs))
                         if dyn is not None else None)
        # Per-lane SuperLU factorizations over the shared symbolic
        # pattern (the sparse analogue of the dense ``_M`` inverses);
        # all stale until first use.
        self._M = [None] * len(rs)
        self._M_valid = np.zeros(len(rs), dtype=bool)

    def step_matrix_lanes(self, dt: float, method: str) -> np.ndarray:
        """Per-lane step base CSR data rows, cached per ``(dt, method)``.

        The companion-conductance delta is lane-independent and every
        dynamic scatter target lies inside the pattern, so the delta is
        stamped dense once, gathered, and broadcast onto the per-lane
        static data.
        """
        key = (dt, method)
        A = self._step_cache.get(key)
        if A is None:
            dyn = self.system.plans.dynamic
            if dt is not None and dyn is not None:
                delta = np.zeros((self.size, self.size))
                dyn.stamp_matrix(delta, dt, method)
                A = self._statics + delta.reshape(-1)[self._pattern.gather]
            else:
                A = self._statics.copy()
            if len(self._step_cache) >= STEP_CACHE_MAX:
                self._step_cache.clear()
            self._step_cache[key] = A
        return A

    # ------------------------------------------------------------------
    # sparse iteration layer
    # ------------------------------------------------------------------
    def matvec_lanes(self, data: np.ndarray, x2: np.ndarray) -> np.ndarray:
        """Batched CSR matvec: ``(n, nnz)`` data rows times ``(n, size)``
        iterates over the shared pattern."""
        pat = self._pattern
        prod = data * x2[:, pat.indices]
        return np.add.reduceat(prod, pat.indptr[:-1], axis=1)

    def build_iteration_sparse(self, A_data: np.ndarray,
                               b_step2: np.ndarray, x2: np.ndarray,
                               temp_c: float
                               ) -> tuple[np.ndarray, np.ndarray]:
        """Per-lane Jacobian CSR data linearised around the iterates.

        Scatters the step base data back onto the dense scratch (every
        nonlinear scatter target lies inside the pattern, so zeros
        elsewhere are never touched), applies the nonlinear plan, and
        gathers the updated pattern slots.  Returns views into a reused
        scratch — consume before the next same-batch-size call.
        """
        n = x2.shape[0]
        n2, size = self._n2, self.size
        sc = self._scratch_cache.get(n)
        if sc is None:
            sc = np.empty((n, n2 + size + 2))
            self._scratch_cache[n] = sc
        flat = sc[:, :n2]
        flat[:] = 0.0
        flat[:, self._pattern.gather] = A_data
        sc[:, n2] = 0.0
        sc[:, n2 + 1:n2 + 1 + size] = b_step2
        sc[:, -1] = 0.0
        nl = self.system._nl_plan
        if nl is not None:
            nl.apply_lanes(sc, x2, temp_c)
        data = flat[:, self._pattern.gather]
        b = sc[:, n2 + 1:n2 + 1 + size]
        return data, b

    def factor_lane(self, data_row: np.ndarray):
        """One numeric SuperLU factorization over the shared symbolic
        pattern.  Returns the factorization, or ``None`` when the lane's
        matrix is singular."""
        backend = self._backend
        np.copyto(backend._data, data_row)
        try:
            lu = backend._splu(backend._sp.csc_matrix(backend._matrix))
        except RuntimeError:   # SuperLU: "Factor is exactly singular"
            return None
        self.counters["lane_symbolic_reuse"] = \
            self.counters.get("lane_symbolic_reuse", 0) + 1
        return lu


def make_lane_system(system: System, resistances,
                     device_name: str) -> LaneSystem:
    """Build the lane system matching the serial path's resolved backend.

    The lane layer batches whatever solver the serial path would use:
    a dense-resolved system stacks into a :class:`LaneSystem` (bitwise
    the pre-sparse behaviour), a sparse-resolved one into a
    :class:`SparseLaneSystem`.  A system the sparse kernel cannot stack
    raises :class:`LaneError` — the engine then degrades to the serial
    sparse path rather than silently going dense at a size the policy
    deemed dense-hostile.
    """
    backend = resolve_backend(None, system)
    if backend.sparse:
        return SparseLaneSystem(system, resistances, device_name,
                                backend=backend)
    return LaneSystem(system, resistances, device_name)


class LaneWarmBank:
    """Cross-batch warm-start state for successive lane generations.

    A bisection driver probes resistances in *generations*: each batch's
    lanes sit between (in log-R) lanes some earlier batch already
    converged.  The bank keeps, per operation key and per converged
    resistance, the lane's final quasi-Newton factorization (dense
    cached inverse or sparse SuperLU) and its node-voltage trajectory:

    * :meth:`seed` warm-starts each new lane's factorization cache from
      its nearest stored log-R neighbour — the chord fixed point does
      not depend on ``M``, so a neighbouring factorization only shortens
      the convergence path (and stagnation refactors it away when the
      neighbourhood was too coarse);
    * :meth:`view` adapts the bank for :func:`lane_transient`'s
      continuation retry: when a failing lane has no converged in-batch
      neighbour to borrow from, the nearest stored *trajectory* supplies
      the warm restart state instead.

    Warm starts are discarded on non-convergence (only converged lanes
    are stored; a bad seed stagnates and refactors) and on topology
    change (the bank belongs to one built netlist; runners clear it on
    stress changes, which move every waveform and time grid).
    """

    #: Stored generations per operation key (oldest evicted first).
    max_entries = 32

    def __init__(self):
        self._ops: dict = {}

    def clear(self) -> None:
        self._ops.clear()

    def _entry(self, key):
        entry = self._ops.get(key)
        if entry is None:
            entry = {"logr": [], "fact": [], "traj": [], "times": []}
            self._ops[key] = entry
        return entry

    def seed(self, key, lanes: LaneSystem) -> tuple[int, int]:
        """Seed stale lanes' factorization caches from nearest stored
        neighbours.  Returns ``(hits, misses)``."""
        entry = self._ops.get(key)
        hits = misses = 0
        for k, r in enumerate(lanes.resistances):
            if lanes._M_valid[k]:
                continue
            fact = None
            if entry and entry["logr"]:
                logr = np.log(r)
                j = int(np.argmin(np.abs(
                    np.asarray(entry["logr"]) - logr)))
                fact = entry["fact"][j]
            if fact is None:
                misses += 1
                continue
            lanes._M[k] = fact if lanes.sparse else np.copy(fact)
            lanes._M_valid[k] = True
            hits += 1
        return hits, misses

    def store(self, key, lanes: LaneSystem, lane_idx, result) -> None:
        """Record one converged lane's factorization and trajectory.

        ``lane_idx`` is the lane's position in ``lanes``; ``result`` its
        :class:`~repro.spice.transient.TransientResult`.
        """
        entry = self._entry(key)
        fact = None
        if lanes._M_valid[lane_idx]:
            fact = (lanes._M[lane_idx] if lanes.sparse
                    else np.copy(lanes._M[lane_idx]))
        entry["logr"].append(float(np.log(lanes.resistances[lane_idx])))
        entry["fact"].append(fact)
        entry["traj"].append(result._data)
        entry["times"].append(len(result.time))
        while len(entry["logr"]) > self.max_entries:
            for field_name in ("logr", "fact", "traj", "times"):
                entry[field_name].pop(0)

    def view(self, key) -> "_WarmView":
        """A retry-state adapter bound to one operation key."""
        return _WarmView(self, key)

    def trajectory_guess(self, key, resistance: float, gi: int,
                         n_grid: int) -> np.ndarray | None:
        """Node voltages at grid index ``gi`` of the nearest stored
        trajectory, or ``None`` when no grid-compatible neighbour
        exists."""
        entry = self._ops.get(key)
        if not entry or not entry["logr"]:
            return None
        logr = np.log(resistance)
        order = np.argsort(np.abs(np.asarray(entry["logr"]) - logr))
        for j in order:
            if entry["times"][j] == n_grid:
                return entry["traj"][j][gi]
        return None


@dataclass
class _WarmView:
    """:class:`LaneWarmBank` bound to one operation key, with the
    ``trajectory_guess(resistance, gi, n_grid)`` protocol
    :func:`lane_transient` expects."""

    bank: LaneWarmBank
    key: object

    def trajectory_guess(self, resistance: float, gi: int,
                         n_grid: int) -> np.ndarray | None:
        return self.bank.trajectory_guess(self.key, resistance, gi,
                                          n_grid)


@dataclass
class LaneBatchResult:
    """Outcome of one :func:`lane_transient` run.

    ``results[k]`` is the lane's :class:`TransientResult`, or ``None``
    when the lane was isolated (``isolated[k]`` true) and must be
    re-run on the legacy per-lane path.  ``counters`` holds the lane
    bookkeeping that feeds :mod:`repro.diagnostics`.
    """

    results: list
    isolated: np.ndarray
    counters: dict = field(default_factory=dict)


def lane_transient(lanes: LaneSystem, tstop: float, dt: float, *,
                   temp_c: float = 27.0, method: str = "be",
                   x0: np.ndarray, warm=None) -> LaneBatchResult:
    """Run one transient over every lane of ``lanes`` simultaneously.

    ``x0`` is the ``(n_lanes, size)`` stack of initial solution vectors
    (one idle state per lane).  All lanes share the
    breakpoint-augmented time grid of the scalar kernel path
    (:func:`~repro.spice.transient._build_grid`); there is no in-batch
    step bisection — see the module docstring for the failure policy.

    ``warm`` optionally supplies cross-batch continuation state (a
    :class:`LaneWarmBank` view): when a failing lane has no converged
    in-batch neighbour to borrow a restart iterate from, the nearest
    stored trajectory from an earlier generation is tried before the
    lane is isolated.  With ``warm=None`` (every pre-existing caller)
    the retry policy is bitwise the legacy in-batch-only behaviour.
    """
    if tstop <= 0 or dt <= 0:
        raise SpiceError("tstop and dt must be positive")
    if method not in ("be", "trap"):
        raise SpiceError(f"unknown integration method {method!r}")
    system = lanes.system
    n_lanes = lanes.n_lanes
    size = lanes.size
    if x0.shape != (n_lanes, size):
        raise LaneError(
            f"x0 shape {x0.shape} does not match ({n_lanes}, {size})")
    grid = _build_grid(tstop, dt, system.source_waveforms())
    times = np.asarray(grid)
    num_nodes = lanes.num_nodes
    node_names = system.circuit.node_names
    # Late-bound dense lookup keeps the module-global seam (tests and
    # instrumentation monkeypatch ``newton_solve_lanes`` here).
    solve_lanes = (newton_solve_lanes_sparse
                   if getattr(lanes, "sparse", False)
                   else newton_solve_lanes)

    x2 = x0.astype(float, copy=True)
    alive = np.ones(n_lanes, dtype=bool)
    counters = {"lanes_launched": n_lanes, "lanes_isolated": 0,
                "lane_continuation_hits": 0}
    data = np.zeros((n_lanes, len(grid), num_nodes))
    data[:, 0] = x2[:, :num_nodes]

    if profiler.enabled:
        profiler.count("lanes.transients")
        profiler.count("lanes.width", n_lanes)
        if getattr(lanes, "sparse", False):
            profiler.count("lanes.sparse_transients")
    with profiler.section("transient.lanes"), dense_errstate():
        t_prev = grid[0]
        x2_prev: np.ndarray | None = None
        x2_prev2: np.ndarray | None = None
        dt_prev = 0.0
        dt_prev2 = 0.0
        for gi in range(1, len(grid)):
            t_target = grid[gi]
            dt_step = t_target - t_prev
            A_step = lanes.step_matrix_lanes(dt_step, method)
            b_step = lanes.step_rhs_lanes(t_target, dt_step, method, x2)
            act = np.flatnonzero(alive)
            if act.size == 0:
                break
            # Polynomial predictor: extrapolate the Newton initial
            # guess from the last accepted solutions (quadratic through
            # three once available, linear through two before that).
            # Affects only the convergence path (the fixed point is
            # unchanged), but typically saves a chord pass per step.
            # The extrapolated delta is clamped to the solver's damping
            # cap — around source breakpoints the history slope is
            # stale and an unbounded prediction can strand a lane in
            # the wrong basin.
            if x2_prev is not None and dt_prev > 0.0:
                d1 = (x2 - x2_prev) * (1.0 / dt_prev)
                delta = d1 * dt_step
                if x2_prev2 is not None and dt_prev2 > 0.0:
                    d2 = (x2_prev - x2_prev2) * (1.0 / dt_prev2)
                    delta += (d1 - d2) * (dt_step * (dt_step + dt_prev)
                                          / (dt_prev + dt_prev2))
                np.clip(delta, -DEFAULT_VSTEP_MAX, DEFAULT_VSTEP_MAX,
                        out=delta)
                guess = x2 + delta
            else:
                guess = x2
            x_new, fail = solve_lanes(
                lanes, A_step[act], b_step[act], guess[act], act,
                temp_c=temp_c)
            x_cand = x2.copy()
            x_cand[act] = x_new
            if fail.any():
                bad = act[fail]
                good = act[~fail]
                sel = bad[:0]
                retry_x0 = None
                if good.size:
                    # Continuation in Rop: warm-start each failing lane
                    # from its nearest converged sweep neighbour.
                    retry_x0 = np.empty((bad.size, size))
                    for j, k in enumerate(bad):
                        nearest = good[np.argmin(np.abs(good - k))]
                        retry_x0[j] = x_cand[nearest]
                    sel = bad
                elif warm is not None:
                    # No in-batch donor: borrow the restart iterate from
                    # the nearest converged trajectory of an earlier
                    # generation (branch currents restart at zero, like
                    # the cycle-chaining seam).
                    retry_x0 = np.zeros((bad.size, size))
                    got = np.zeros(bad.size, dtype=bool)
                    for j, k in enumerate(bad):
                        g = warm.trajectory_guess(
                            lanes.resistances[k], gi, len(grid))
                        if g is not None:
                            retry_x0[j, :num_nodes] = g
                            got[j] = True
                    sel = bad[got]
                    retry_x0 = retry_x0[got]
                if sel.size:
                    x_retry, fail2 = solve_lanes(
                        lanes, A_step[sel], b_step[sel], retry_x0, sel,
                        temp_c=temp_c)
                    rescued = sel[~fail2]
                    if rescued.size:
                        x_cand[rescued] = x_retry[~fail2]
                        counters["lane_continuation_hits"] += \
                            int(rescued.size)
                        bad = np.setdiff1d(bad, rescued)
                if bad.size:
                    alive[bad] = False
                    counters["lanes_isolated"] += int(bad.size)
            live = np.flatnonzero(alive)
            x_next = x2.copy()
            x_next[live] = x_cand[live]
            lanes.accept_step_lanes(x2, x_next, dt_step, method)
            x2_prev2, dt_prev2 = x2_prev, dt_prev
            x2_prev, dt_prev = x2, dt_step
            x2 = x_next
            data[live, gi] = x2[live, :num_nodes]
            t_prev = t_target

    counters["lanes_converged"] = int(alive.sum())
    if getattr(lanes, "sparse", False):
        counters["lane_sparse_groups"] = 1
    extra = getattr(lanes, "counters", None)
    if extra:
        for name, value in extra.items():
            counters[name] = counters.get(name, 0) + value
        extra.clear()
    results = [
        TransientResult(times, data[k], node_names,
                        final_x=x2[k].copy(), rescues=[])
        if alive[k] else None
        for k in range(n_lanes)]
    return LaneBatchResult(results=results, isolated=~alive,
                           counters=counters)
