"""Compiled stamp plans: vectorized MNA assembly kernels.

The per-device stamping protocol (:mod:`repro.spice.netlist`) is flexible
but slow: every Newton iteration walks Python device objects one by one
and funnels scalar writes through :class:`~repro.spice.netlist.Stamper`
methods.  A *stamp plan* compiles each assembly layer into flat numpy
index/value arrays once per :class:`~repro.spice.mna.System`, so the hot
loop becomes a handful of gathers, elementwise array math and one
``np.add.at`` scatter per layer.

Bitwise parity with the per-device path is a hard requirement (the
default engine configuration must keep golden outputs byte-identical),
and the plans are built for it:

* scatters preserve the per-device stamp order, so floating-point
  accumulation happens in exactly the legacy sequence;
* entries that the ``Stamper`` would drop (ground terminals) are
  redirected to a scrap slot past the end of the flattened system
  instead of changing the slot structure;
* the transcendental core of the device models (``exp``, ``log1p``) is
  evaluated with the same scalar :mod:`math` calls as the per-device
  path (numpy's SIMD transcendentals differ in the last ulp), while all
  surrounding arithmetic is vectorized.

A layer that contains a device the compiler does not understand falls
back to the per-device path wholesale — partial compilation would break
the accumulation-order guarantee.
"""

from __future__ import annotations

import math

import numpy as np

from repro.spice.devices import _EXP_CLAMP as _DIODE_EXP_CLAMP
from repro.spice.devices import (
    Capacitor,
    CurrentSource,
    Diode,
    VoltageSource,
    diode_iv_vec,
    thermal_voltage,
)
from repro.spice.mosfet import _EXP_CLAMP as _MOS_EXP_CLAMP
from repro.spice.mosfet import Mosfet, mosfet_curves_vec


class UnsupportedStamp(Exception):
    """A device stamped in a way the plan compiler cannot record."""


class _Recorder:
    """Duck-typed :class:`Stamper` that records stamps instead of applying
    them.  Raw ``A``/``b``/``ctx`` access raises :class:`UnsupportedStamp`
    so devices that bypass the stamp methods trigger a layer fallback.
    """

    def __init__(self, num_nodes: int):
        self.num_nodes = num_nodes
        self.mat: list[tuple[int, int, float]] = []
        self.rhs: list[tuple[int, float]] = []

    @property
    def A(self):
        raise UnsupportedStamp("raw matrix access is not plan-compilable")

    @property
    def b(self):
        raise UnsupportedStamp("raw rhs access is not plan-compilable")

    @property
    def ctx(self):
        raise UnsupportedStamp("static stamps may not read analysis state")

    # mirror Stamper's write methods (and their ground handling) exactly
    def conductance(self, a, b, g):
        ia, ib = a.index, b.index
        if ia >= 0:
            self.mat.append((ia, ia, g))
        if ib >= 0:
            self.mat.append((ib, ib, g))
        if ia >= 0 and ib >= 0:
            self.mat.append((ia, ib, -g))
            self.mat.append((ib, ia, -g))

    def transconductance(self, out_p, out_n, in_p, in_n, gm):
        op, on = out_p.index, out_n.index
        ip, in_ = in_p.index, in_n.index
        if op >= 0:
            if ip >= 0:
                self.mat.append((op, ip, gm))
            if in_ >= 0:
                self.mat.append((op, in_, -gm))
        if on >= 0:
            if ip >= 0:
                self.mat.append((on, ip, -gm))
            if in_ >= 0:
                self.mat.append((on, in_, gm))

    def current(self, a, b, i):
        if a.index >= 0:
            self.rhs.append((a.index, -i))
        if b.index >= 0:
            self.rhs.append((b.index, i))

    def branch_row(self, branch):
        return self.num_nodes + branch

    def incidence(self, p, n, branch):
        row = self.branch_row(branch)
        ip, in_ = p.index, n.index
        if ip >= 0:
            self.mat.append((ip, row, 1.0))
            self.mat.append((row, ip, 1.0))
        if in_ >= 0:
            self.mat.append((in_, row, -1.0))
            self.mat.append((row, in_, -1.0))

    def voltage_source(self, p, n, branch, value):
        self.incidence(p, n, branch)
        self.rhs.append((self.branch_row(branch), value))

    def branch_rhs(self, branch, value):
        self.rhs.append((self.branch_row(branch), value))


class StaticPlan:
    """Recorded value-only stamps as flat index/value arrays.

    ``spans`` maps a device name to the ``(start, end)`` slice of the
    entry arrays that device recorded — the hook the multi-lane kernel
    uses to re-value a single device (the defect resistor) per lane
    without recompiling the plan.
    """

    def __init__(self, rows, cols, vals,
                 spans: dict[str, tuple[int, int]] | None = None):
        self.rows = np.asarray(rows, dtype=np.intp)
        self.cols = np.asarray(cols, dtype=np.intp)
        self.vals = np.asarray(vals, dtype=float)
        self.spans = spans or {}

    def assemble(self, size: int) -> np.ndarray:
        A = np.zeros((size, size))
        np.add.at(A, (self.rows, self.cols), self.vals)
        return A

    def assemble_with_vals(self, size: int,
                           vals: np.ndarray) -> np.ndarray:
        """:meth:`assemble` with substituted entry values (same slots)."""
        A = np.zeros((size, size))
        np.add.at(A, (self.rows, self.cols), vals)
        return A

    def device_span(self, name: str) -> tuple[int, int] | None:
        """Entry-array slice recorded by device ``name`` (or ``None``)."""
        return self.spans.get(name)


def compile_static(devices, num_nodes: int) -> StaticPlan | None:
    """Record every device's static stamps; ``None`` on fallback."""
    rec = _Recorder(num_nodes)
    spans: dict[str, tuple[int, int]] = {}
    try:
        for dev in devices:
            start = len(rec.mat)
            dev.stamp_static(rec)
            name = getattr(dev, "name", None)
            if name is not None:
                spans[name] = (start, len(rec.mat))
    except UnsupportedStamp:
        return None
    if rec.rhs:
        # The engine discards the static-layer rhs (see System._build_static)
        # and so does the plan; record nothing rather than diverge.
        pass
    rows = [r for r, _, _ in rec.mat]
    cols = [c for _, c, _ in rec.mat]
    vals = [v for _, _, v in rec.mat]
    return StaticPlan(rows, cols, vals, spans=spans)


def _scrap_flat(row, col, size):
    """Flat index of (row, col), or the scrap slot when either is ground."""
    if row < 0 or col < 0:
        return size * size
    return row * size + col


def _scrap_row(row, size):
    return size if row < 0 else row


class DynamicPlan:
    """Vectorized capacitor companion stamps (backward Euler / trap)."""

    def __init__(self, caps: list[Capacitor], size: int):
        self.caps = caps
        n = len(caps)
        self.size = size
        ia = np.array([c.a.index for c in caps], dtype=np.intp)
        ib = np.array([c.b.index for c in caps], dtype=np.intp)
        self.ia, self.ib = ia, ib
        self.cap = np.array([c.capacitance for c in caps])
        # A slots per cap: (a,a)+ (b,b)+ (a,b)- (b,a)-  in Stamper order.
        mat_idx = np.empty((n, 4), dtype=np.intp)
        for k, c in enumerate(caps):
            a, b = c.a.index, c.b.index
            mat_idx[k] = (_scrap_flat(a, a, size), _scrap_flat(b, b, size),
                          _scrap_flat(a, b, size), _scrap_flat(b, a, size))
        self._mat_idx = mat_idx.ravel()
        self._mat_sign = np.tile(np.array([1.0, 1.0, -1.0, -1.0]), n)
        # b slots per cap: current(b, a, ieq) => b[b]-=ieq, b[a]+=ieq.
        rhs_idx = np.empty((n, 2), dtype=np.intp)
        for k, c in enumerate(caps):
            rhs_idx[k] = (_scrap_row(c.b.index, size),
                          _scrap_row(c.a.index, size))
        self._rhs_idx = rhs_idx.ravel()
        self._rhs_sign = np.tile(np.array([-1.0, 1.0]), n)
        self._i_prev = np.array([c._i_prev for c in caps])
        self._use_vec = n >= VEC_CROSSOVER
        self._rhs_meta_cache: dict = {}

    def _geq(self, dt: float, method: str) -> np.ndarray:
        if method == "trap":
            return 2.0 * self.cap / dt
        return self.cap / dt

    def _rhs_loop_meta(self, dt: float, method: str) -> tuple:
        """Per-cap ``(slot_b, slot_a, ia, ib, geq)`` tuples for the scalar
        rhs loop, cached per ``(dt, method)`` like the step matrix."""
        key = (dt, method)
        meta = self._rhs_meta_cache.get(key)
        if meta is None:
            geq = self._geq(dt, method)
            ri = self._rhs_idx
            meta = tuple(
                (int(ri[2 * k]), int(ri[2 * k + 1]), int(self.ia[k]),
                 int(self.ib[k]), float(geq[k]))
                for k in range(len(self.caps)))
            if len(self._rhs_meta_cache) >= 64:
                self._rhs_meta_cache.clear()
            self._rhs_meta_cache[key] = meta
        return meta

    def stamp_rhs_loop(self, bl: list, dt: float, method: str,
                       x_prev: np.ndarray) -> None:
        """Scalar-loop variant of :meth:`stamp_rhs` over a plain list.

        ``bl`` carries a trailing scrap slot, so ground rows (slot index
        ``size`` — the last element) are absorbed without branching; the
        ``-1`` voltage sentinel reads ground as 0 V.  Adds/subtracts in
        the exact :meth:`stamp_rhs` order, so the result is bitwise the
        same (``x -= y`` is ``x += (-y)`` exactly).
        """
        meta = self._rhs_loop_meta(dt, method)
        xl = x_prev.tolist()
        xl.append(0.0)
        if method == "trap":
            ip = self._i_prev.tolist()
            for k, (sb, sa, ia, ib, g) in enumerate(meta):
                ieq = g * (xl[ia] - xl[ib]) + ip[k]
                bl[sb] -= ieq
                bl[sa] += ieq
        else:
            for sb, sa, ia, ib, g in meta:
                ieq = g * (xl[ia] - xl[ib])
                bl[sb] -= ieq
                bl[sa] += ieq

    def stamp_matrix(self, A: np.ndarray, dt: float, method: str) -> None:
        """Add the companion conductances into ``A`` (dt-dependent only)."""
        geq = self._geq(dt, method)
        flat = np.empty(A.size + 1)
        flat[:A.size] = A.ravel()
        flat[A.size] = 0.0
        np.add.at(flat, self._mat_idx,
                  (np.repeat(geq, 4) * self._mat_sign))
        A[:] = flat[:A.size].reshape(A.shape)

    def stamp_rhs(self, b_padded: np.ndarray, dt: float, method: str,
                  x_prev: np.ndarray) -> None:
        """Add the companion currents into the padded rhs buffer."""
        va = np.where(self.ia >= 0, x_prev[self.ia], 0.0)
        vb = np.where(self.ib >= 0, x_prev[self.ib], 0.0)
        v_prev = va - vb
        geq = self._geq(dt, method)
        if method == "trap":
            ieq = geq * v_prev + self._i_prev
        else:
            ieq = geq * v_prev
        np.add.at(b_padded, self._rhs_idx,
                  np.repeat(ieq, 2) * self._rhs_sign)

    def accept_step(self, x_prev: np.ndarray, x_now: np.ndarray,
                    dt: float, method: str) -> None:
        """Vectorized trapezoidal history update (no-op for BE)."""
        if method != "trap":
            return
        va_p = np.where(self.ia >= 0, x_prev[self.ia], 0.0)
        vb_p = np.where(self.ib >= 0, x_prev[self.ib], 0.0)
        va_n = np.where(self.ia >= 0, x_now[self.ia], 0.0)
        vb_n = np.where(self.ib >= 0, x_now[self.ib], 0.0)
        self._i_prev = (2.0 * self.cap / dt * ((va_n - vb_n) - (va_p - vb_p))
                        - self._i_prev)
        # Keep the device objects authoritative for cross-analysis chaining.
        for dev, val in zip(self.caps, self._i_prev):
            dev._i_prev = float(val)

    # ------------------------------------------------------------------
    # multi-lane (batched) variants
    # ------------------------------------------------------------------
    def stamp_rhs_lanes(self, b2_padded: np.ndarray, dt: float,
                        method: str, x_prev2: np.ndarray,
                        i_prev2: np.ndarray | None = None) -> None:
        """Batched :meth:`stamp_rhs` over ``(n_lanes, size + 1)`` buffers.

        ``x_prev2`` stacks one state vector per lane; ``i_prev2`` is the
        caller-held trapezoidal history ``(n_lanes, n_caps)`` (lanes
        never chain history through the device objects).  Scattering
        goes through a per-lane segment sum (``np.bincount``) rather
        than ``np.add.at`` — same totals per slot, accumulated apart
        from the base buffer, so lane results carry the documented fp
        tolerance instead of bitwise parity.
        """
        va = np.where(self.ia >= 0, x_prev2[:, self.ia], 0.0)
        vb = np.where(self.ib >= 0, x_prev2[:, self.ib], 0.0)
        geq = self._geq(dt, method)
        ieq = geq * (va - vb)
        if method == "trap" and i_prev2 is not None:
            ieq = ieq + i_prev2
        vals = np.repeat(ieq, 2, axis=1) * self._rhs_sign
        _scatter_lanes(b2_padded, self._rhs_idx, vals)

    def accept_step_lanes(self, x_prev2: np.ndarray, x_now2: np.ndarray,
                          dt: float, method: str,
                          i_prev2: np.ndarray | None) -> np.ndarray | None:
        """Batched trapezoidal history update; returns the new history.

        Device objects are left untouched — per-lane history lives with
        the caller (:class:`~repro.spice.lanes.LaneSystem`).
        """
        if method != "trap" or i_prev2 is None:
            return i_prev2
        va_p = np.where(self.ia >= 0, x_prev2[:, self.ia], 0.0)
        vb_p = np.where(self.ib >= 0, x_prev2[:, self.ib], 0.0)
        va_n = np.where(self.ia >= 0, x_now2[:, self.ia], 0.0)
        vb_n = np.where(self.ib >= 0, x_now2[:, self.ib], 0.0)
        return (2.0 * self.cap / dt * ((va_n - vb_n) - (va_p - vb_p))
                - i_prev2)

    def initial_history_lanes(self, n_lanes: int) -> np.ndarray:
        """Per-lane trapezoidal history seeded from the device state."""
        return np.tile(self._i_prev, (n_lanes, 1))


def _scatter_lanes(target2: np.ndarray, idx, vals2: np.ndarray) -> None:
    """Accumulate ``vals2`` into ``target2`` at per-lane slot indices.

    ``idx`` is either a shared ``(n_slots,)`` index vector or a per-lane
    ``(n_lanes, n_slots)`` array.  Implemented as one flattened
    ``np.bincount`` segment sum — per slot the summation order matches
    the sequential ``np.add.at`` order, but the partial sums accumulate
    separately from the base buffer before one final add (fp-tolerance
    rather than bitwise parity; the per-lane path keeps the latter).
    """
    n_lanes, stride = target2.shape
    offsets = (np.arange(n_lanes) * stride)[:, None]
    flat_idx = (idx + offsets).ravel()
    acc = np.bincount(flat_idx, weights=vals2.ravel(),
                      minlength=n_lanes * stride)
    target2 += acc.reshape(n_lanes, stride)


class SourcePlan:
    """Pre-resolved rhs targets for independent sources.

    Waveforms are read through the *device* at evaluation time, so
    reprogramming a source's waveform between analyses (the DRAM runner
    does this every cycle) needs no recompilation.
    """

    def __init__(self, entries):
        # entries: ("v", device, row) | ("i", device, row_p, row_n)
        self.entries = entries

    def apply(self, b: np.ndarray, t: float) -> None:
        for entry in self.entries:
            if entry[0] == "v":
                b[entry[2]] += entry[1].waveform.value(t)
            else:
                val = entry[1].waveform.value(t)
                _, _, rp, rn = entry
                if rp >= 0:
                    b[rp] -= val
                if rn >= 0:
                    b[rn] += val

    def apply_loop(self, bl: list, t: float) -> None:
        """List variant of :meth:`apply` for the scalar step-rhs path.

        ``bl`` carries a trailing scrap slot; a ground row stored as
        ``-1`` lands on it (the last element) instead of branching.
        """
        for entry in self.entries:
            if entry[0] == "v":
                bl[entry[2]] += entry[1].waveform.value(t)
            else:
                val = entry[1].waveform.value(t)
                bl[entry[2]] -= val
                bl[entry[3]] += val


def compile_sources(devices, num_nodes: int) -> SourcePlan | None:
    entries = []
    for dev in devices:
        if type(dev) is VoltageSource:
            entries.append(("v", dev, num_nodes + dev._branch))
        elif type(dev) is CurrentSource:
            entries.append(("i", dev, dev.p.index, dev.n.index))
        else:
            return None
    return SourcePlan(entries)


#: Per-mosfet A-slot signs: 4 conductance then 4 transconductance entries.
_MOS_SIGNS = np.array([1.0, 1.0, -1.0, -1.0, 1.0, -1.0, -1.0, 1.0])
_DIODE_SIGNS = np.array([1.0, 1.0, -1.0, -1.0])


#: Device count above which the numpy evaluation path beats the fused
#: scalar loop (numpy's per-op overhead amortises, the Python loop does
#: not).  Below it — every DRAM column netlist — the loop wins ~2x.
VEC_CROSSOVER = 64


class NonlinearPlan:
    """One-pass MOSFET + diode linearization and scatter.

    All nonlinear devices are evaluated in one pass per Newton iteration
    and scattered with a single ``np.add.at`` per target (matrix, rhs)
    in original device order.  MOSFET source/drain swaps are handled by
    selecting between two precompiled slot-index variants per device.

    Two bitwise-identical evaluation kernels back :meth:`apply`: an
    array pass (:func:`~repro.spice.mosfet.mosfet_curves_vec`,
    :func:`~repro.spice.devices.diode_iv_vec`) for large device counts,
    and a fused scalar loop for small ones, where numpy's fixed per-op
    overhead dominates the array math (the crossover is
    :data:`VEC_CROSSOVER`).
    """

    def __init__(self, devices, size: int):
        self.size = size
        self.mosfets = [d for d in devices if type(d) is Mosfet]
        self.diodes = [d for d in devices if type(d) is Diode]
        n_mos, n_di = len(self.mosfets), len(self.diodes)

        # --- global slot layout (device order) -------------------------
        n_A = 8 * n_mos + 4 * n_di
        n_b = 2 * (n_mos + n_di)
        self._A_idx_norm = np.full(n_A, size * size, dtype=np.intp)
        self._A_idx_swap = np.full(n_A, size * size, dtype=np.intp)
        self._A_sign = np.empty(n_A)
        self._A_swap_owner = np.zeros(n_A, dtype=bool)  # mosfet-owned slots
        self._b_idx = np.full(n_b, size, dtype=np.intp)
        mos_A_pos = np.empty((n_mos, 8), dtype=np.intp)
        mos_b_pos = np.empty((n_mos, 2), dtype=np.intp)
        di_A_pos = np.empty((n_di, 4), dtype=np.intp)
        di_b_pos = np.empty((n_di, 2), dtype=np.intp)

        a_cur = b_cur = 0
        i_mos = i_di = 0
        for dev in devices:
            if type(dev) is Mosfet:
                d, g, s = (dev.drain.index, dev.gate.index,
                           dev.source.index)
                sl = slice(a_cur, a_cur + 8)
                pos = np.arange(a_cur, a_cur + 8)
                mos_A_pos[i_mos] = pos
                # conductance slots (orientation-independent positions)
                cond = [_scrap_flat(d, d, size), _scrap_flat(s, s, size),
                        _scrap_flat(d, s, size), _scrap_flat(s, d, size)]
                # transconductance slots, normal (nd=d) / swapped (nd=s)
                tc_norm = [_scrap_flat(d, g, size), _scrap_flat(d, s, size),
                           _scrap_flat(s, g, size), _scrap_flat(s, s, size)]
                tc_swap = [_scrap_flat(s, g, size), _scrap_flat(s, d, size),
                           _scrap_flat(d, g, size), _scrap_flat(d, d, size)]
                self._A_idx_norm[sl] = cond + tc_norm
                self._A_idx_swap[sl] = cond + tc_swap
                self._A_sign[sl] = _MOS_SIGNS
                self._A_swap_owner[sl] = True
                mos_b_pos[i_mos] = (b_cur, b_cur + 1)
                self._b_idx[b_cur] = _scrap_row(d, size)
                self._b_idx[b_cur + 1] = _scrap_row(s, size)
                a_cur += 8
                b_cur += 2
                i_mos += 1
            else:
                a, c = dev.anode.index, dev.cathode.index
                sl = slice(a_cur, a_cur + 4)
                di_A_pos[i_di] = np.arange(a_cur, a_cur + 4)
                self._A_idx_norm[sl] = [
                    _scrap_flat(a, a, size), _scrap_flat(c, c, size),
                    _scrap_flat(a, c, size), _scrap_flat(c, a, size)]
                self._A_idx_swap[sl] = self._A_idx_norm[sl]
                self._A_sign[sl] = _DIODE_SIGNS
                di_b_pos[i_di] = (b_cur, b_cur + 1)
                self._b_idx[b_cur] = _scrap_row(a, size)
                self._b_idx[b_cur + 1] = _scrap_row(c, size)
                a_cur += 4
                b_cur += 2
                i_di += 1

        self._mos_A_pos = mos_A_pos
        self._mos_b_pos = mos_b_pos
        self._di_A_pos = di_A_pos
        self._di_b_pos = di_b_pos

        # --- combined scatter layout -----------------------------------
        # The target buffer is one contiguous scratch laid out as
        # [A (size^2) | scrapA | b (size) | scrapB], so the matrix and
        # rhs updates land in a single np.add.at (A entries first, then
        # b entries — the exact legacy accumulation order, into disjoint
        # regions).
        b_off = size * size + 1
        self._b_off = b_off
        self._b_idx_off = self._b_idx + b_off
        self._AB_idx_norm = np.concatenate(
            [self._A_idx_norm, self._b_idx_off])
        self._AB_sign = np.concatenate([self._A_sign, np.ones(n_b)])
        self._quant = np.empty(n_A + n_b)
        self._mos_b_q = mos_b_pos + n_A   # b-value positions in _quant
        self._di_b_q = di_b_pos + n_A

        # --- per-device gather indices and polarity --------------------
        self._mos_d = np.array([m.drain.index for m in self.mosfets],
                               dtype=np.intp)
        self._mos_g = np.array([m.gate.index for m in self.mosfets],
                               dtype=np.intp)
        self._mos_s = np.array([m.source.index for m in self.mosfets],
                               dtype=np.intp)
        self._mos_pol = np.array(
            [1.0 if m.params.polarity == "n" else -1.0
             for m in self.mosfets])
        self._di_a = np.array([d.anode.index for d in self.diodes],
                              dtype=np.intp)
        self._di_c = np.array([d.cathode.index for d in self.diodes],
                              dtype=np.intp)
        self._temp_cache: dict[float, tuple] = {}

        # fused-scalar-loop support (small device counts)
        self._use_vec = (n_mos + n_di) >= VEC_CROSSOVER
        self._n_A = n_A
        self._n_b = n_b
        self._loop_cache: dict[float, tuple] = {}
        # Swap-pattern cache, keyed by an int bitmask (scalar loop) or a
        # bool tuple (array pass) — the key spaces cannot collide.
        self._swap_idx_cache: dict = {}
        # Persistent value staging for the scalar loop; every slot is
        # rewritten on every call, so reuse is safe.
        self._qa = [0.0] * n_A
        self._vb = [0.0] * n_b

        # residual-form (chord) lane kernel: one fused terminal gather
        # through a zero-padded iterate (ground -> pad column ``size``)
        # and one bincount scatter with flat indices cached per lane
        # count (see :meth:`residual_lanes`).
        def _pad(idx: np.ndarray) -> np.ndarray:
            return np.where(idx >= 0, idx, size)

        self._res_gather = np.concatenate(
            [_pad(self._mos_d), _pad(self._mos_g), _pad(self._mos_s),
             _pad(self._di_a), _pad(self._di_c)])
        self._res_idx = np.concatenate(
            [self._b_idx[mos_b_pos[:, 0]], self._b_idx[mos_b_pos[:, 1]],
             self._b_idx[di_b_pos[:, 0]], self._b_idx[di_b_pos[:, 1]]])
        self._res_flat_cache: dict[int, np.ndarray] = {}
        self._res_pad_cache: dict[int, np.ndarray] = {}

    # ------------------------------------------------------------------
    def _temp_params(self, temp_c: float) -> tuple:
        """Per-device temperature-dependent parameters (scalar-computed
        with the exact device-model methods, then cached per temp)."""
        cached = self._temp_cache.get(temp_c)
        if cached is not None:
            return cached
        beta = np.array([m.params.kp_at(temp_c) * (m.w / m.l)
                         for m in self.mosfets])
        nvt = np.array([m.params.n_ss * thermal_voltage(temp_c)
                        for m in self.mosfets])
        vth = np.array([m.params.vth_at(temp_c) for m in self.mosfets])
        lam = np.array([m.params.lam for m in self.mosfets])
        di_isat = np.array([d.isat_at(temp_c) for d in self.diodes])
        di_vt = np.array([d.emission * thermal_voltage(temp_c)
                          for d in self.diodes])
        cached = (beta, nvt, vth, lam, di_isat, di_vt)
        if len(self._temp_cache) > 16:
            self._temp_cache.clear()
        self._temp_cache[temp_c] = cached
        return cached

    @staticmethod
    def _gather(x: np.ndarray, idx: np.ndarray) -> np.ndarray:
        return np.where(idx >= 0, x[idx], 0.0)

    def _loop_meta(self, temp_c: float) -> tuple:
        """Per-device metadata tuples for the fused scalar loop, merged
        with the temperature-resolved parameters and cached per temp."""
        cached = self._loop_cache.get(temp_c)
        if cached is not None:
            return cached
        beta, nvt, vth, lam, di_isat, di_vt = self._temp_params(temp_c)
        mos_meta = tuple(
            (int(self._mos_d[i]), int(self._mos_g[i]), int(self._mos_s[i]),
             float(self._mos_pol[i]), float(beta[i]), float(nvt[i]),
             float(vth[i]), float(lam[i]), int(self._mos_A_pos[i, 0]),
             int(self._mos_b_pos[i, 0]))
            for i in range(len(self.mosfets)))
        di_meta = tuple(
            (int(self._di_a[i]), int(self._di_c[i]), float(di_isat[i]),
             float(di_vt[i]), int(self._di_A_pos[i, 0]),
             int(self._di_b_pos[i, 0]))
            for i in range(len(self.diodes)))
        cached = (mos_meta, di_meta)
        if len(self._loop_cache) > 16:
            self._loop_cache.clear()
        self._loop_cache[temp_c] = cached
        return cached

    def _build_swap_idx(self, sw: list) -> np.ndarray:
        swap_slots = np.zeros(self._n_A, dtype=bool)
        swap_slots[self._mos_A_pos] = np.array(sw)[:, None]
        A_idx = np.where(swap_slots, self._A_idx_swap, self._A_idx_norm)
        return np.concatenate([A_idx, self._b_idx_off])

    def _cache_swap_idx(self, key, idx: np.ndarray) -> None:
        if len(self._swap_idx_cache) > 128:
            self._swap_idx_cache.clear()
        self._swap_idx_cache[key] = idx

    def _swap_AB_idx(self, sw: list) -> np.ndarray:
        """Combined slot index array for a given per-mosfet swap pattern."""
        key = tuple(sw)
        idx = self._swap_idx_cache.get(key)
        if idx is None:
            idx = self._build_swap_idx(sw)
            self._cache_swap_idx(key, idx)
        return idx

    def _swap_AB_idx_mask(self, mask: int) -> np.ndarray:
        """Like :meth:`_swap_AB_idx`, keyed by an int swap bitmask."""
        idx = self._swap_idx_cache.get(mask)
        if idx is None:
            idx = self._build_swap_idx(
                [(mask >> k) & 1 for k in range(len(self.mosfets))])
            self._cache_swap_idx(mask, idx)
        return idx

    def apply(self, flat: np.ndarray, x: np.ndarray,
              temp_c: float) -> None:
        """Linearize every nonlinear device around ``x`` and scatter into
        the combined ``[A | scrapA | b | scrapB]`` scratch buffer."""
        if self._use_vec:
            self._apply_vec(flat, x, temp_c)
        else:
            self._apply_loop(flat, x, temp_c)

    def _apply_loop(self, flat: np.ndarray, x: np.ndarray,
                    temp_c: float) -> None:
        """Fused scalar loop over all nonlinear devices.

        Every expression mirrors the per-device model code
        (:func:`~repro.spice.mosfet.mosfet_curves`, :meth:`Diode.iv`)
        operation for operation, so the scattered values are bitwise
        those of the vectorized kernel and of the legacy stamp walk.
        The slot signs are folded into the written values (negation is
        exact), saving the sign-vector multiply of the array path.
        """
        mos_meta, di_meta = self._loop_meta(temp_c)
        xl = x.tolist()
        xl.append(0.0)  # ground sentinel: index -1 reads 0 V branch-free
        qa = self._qa
        vb = self._vb
        mask = 0
        exp = math.exp
        log1p = math.log1p
        for k, (di, gi, si, p, be, nv, vt, la, a0, b0) in \
                enumerate(mos_meta):
            vd = xl[di]
            vg = xl[gi]
            vs = xl[si]
            if p * (vd - vs) < 0.0:
                vnd = vs
                vns = vd
                mask |= 1 << k
                s = 1.0
            else:
                vnd = vd
                vns = vs
                s = -1.0
            vgs = p * (vg - vns)
            vds = p * (vnd - vns)
            vov = vgs - vt
            u = vov / nv
            if u > _MOS_EXP_CLAMP:
                sp = u
                sg = 1.0
            elif u < -_MOS_EXP_CLAMP:
                sp = 0.0
                sg = 0.0
            else:
                sp = log1p(exp(u))
                sg = 1.0 / (1.0 + exp(-u))
            veff = nv * sp
            clm = 1.0 + la * vds
            if vds < veff:  # triode
                gm = be * vds * clm * sg
                gds = be * ((veff - vds) * clm
                            + (veff - 0.5 * vds) * vds * la)
                i_real = p * (be * (veff - 0.5 * vds) * vds * clm)
            else:  # saturation
                hb = 0.5 * be * veff * veff
                gm = be * veff * clm * sg
                gds = hb * la
                i_real = p * (hb * clm)
            residual = i_real - gds * (vnd - vns) - gm * (vg - vns)
            qa[a0] = gds
            qa[a0 + 1] = gds
            qa[a0 + 2] = -gds
            qa[a0 + 3] = -gds
            qa[a0 + 4] = gm
            qa[a0 + 5] = -gm
            qa[a0 + 6] = -gm
            qa[a0 + 7] = gm
            vb[b0] = s * residual
            vb[b0 + 1] = -s * residual
        for (ai, ci, isat, dvt, a0, b0) in di_meta:
            v = xl[ai] - xl[ci]
            arg = v / dvt
            if arg > _DIODE_EXP_CLAMP:
                arg = _DIODE_EXP_CLAMP
            e = exp(arg)
            i = isat * (e - 1.0)
            gd = isat * e / dvt
            ires = i - gd * v
            qa[a0] = gd
            qa[a0 + 1] = gd
            qa[a0 + 2] = -gd
            qa[a0 + 3] = -gd
            vb[b0] = -ires
            vb[b0 + 1] = ires
        quant = self._quant
        n_A = self._n_A
        quant[:n_A] = qa
        quant[n_A:] = vb
        idx = self._swap_AB_idx_mask(mask) if mask else self._AB_idx_norm
        np.add.at(flat, idx, quant)

    def _apply_vec(self, flat: np.ndarray, x: np.ndarray,
                   temp_c: float) -> None:
        """Array-pass evaluation (large device counts)."""
        beta, nvt, vth, lam, di_isat, di_vt = self._temp_params(temp_c)
        quant = self._quant
        if self.mosfets:
            pol = self._mos_pol
            vd = self._gather(x, self._mos_d)
            vg = self._gather(x, self._mos_g)
            vs = self._gather(x, self._mos_s)
            swap = pol * (vd - vs) < 0.0
            vnd = np.where(swap, vs, vd)
            vns = np.where(swap, vd, vs)
            vgs = pol * (vg - vns)
            vds = pol * (vnd - vns)
            ids, gm, gds = mosfet_curves_vec(beta, nvt, vth, lam, vgs, vds)
            i_real = pol * ids
            residual = i_real - gds * (vnd - vns) - gm * (vg - vns)
            quant[self._mos_A_pos[:, :4]] = gds[:, None]
            quant[self._mos_A_pos[:, 4:]] = gm[:, None]
            sgn = np.where(swap, 1.0, -1.0)
            quant[self._mos_b_q[:, 0]] = sgn * residual
            quant[self._mos_b_q[:, 1]] = (-sgn) * residual
        if self.diodes:
            va = self._gather(x, self._di_a)
            vc = self._gather(x, self._di_c)
            v = va - vc
            i, gd = diode_iv_vec(v, di_vt, di_isat)
            ires = i - gd * v
            quant[self._di_A_pos] = gd[:, None]
            quant[self._di_b_q[:, 0]] = -ires
            quant[self._di_b_q[:, 1]] = ires
        if self.mosfets and swap.any():
            idx = self._swap_AB_idx(swap.tolist())
        else:
            idx = self._AB_idx_norm
        np.add.at(flat, idx, quant * self._AB_sign)

    # ------------------------------------------------------------------
    # multi-lane (batched) evaluation
    # ------------------------------------------------------------------
    def apply_lanes(self, flat2: np.ndarray, x2: np.ndarray,
                    temp_c: float) -> None:
        """Batched :meth:`apply` over ``n_lanes`` stacked iterates.

        ``flat2`` is ``(n_lanes, size^2 + size + 2)`` — one combined
        ``[A | scrapA | b | scrapB]`` scratch row per lane — and ``x2``
        stacks the Newton iterates.  The device math uses numpy's native
        transcendentals (:func:`_mosfet_curves_lanes`,
        :func:`_diode_iv_lanes`), which differ from the scalar ``math``
        calls of the per-lane path in the last ulp; lane results
        therefore carry a documented fp tolerance instead of the bitwise
        guarantee (see DESIGN.md section 5d).
        """
        beta, nvt, vth, lam, di_isat, di_vt = self._temp_params(temp_c)
        n_lanes = x2.shape[0]
        n_A, n_b = self._n_A, self._n_b
        quant = np.empty((n_lanes, n_A + n_b))
        swap = None
        if self.mosfets:
            pol = self._mos_pol
            vd = self._gather2(x2, self._mos_d)
            vg = self._gather2(x2, self._mos_g)
            vs = self._gather2(x2, self._mos_s)
            swap = pol * (vd - vs) < 0.0
            vnd = np.where(swap, vs, vd)
            vns = np.where(swap, vd, vs)
            vgs = pol * (vg - vns)
            vds = pol * (vnd - vns)
            ids, gm, gds = _mosfet_curves_lanes(beta, nvt, vth, lam,
                                                vgs, vds)
            residual = pol * ids - gds * (vnd - vns) - gm * (vg - vns)
            quant[:, self._mos_A_pos[:, :4]] = gds[:, :, None]
            quant[:, self._mos_A_pos[:, 4:]] = gm[:, :, None]
            sgn = np.where(swap, 1.0, -1.0)
            quant[:, self._mos_b_q[:, 0]] = sgn * residual
            quant[:, self._mos_b_q[:, 1]] = -sgn * residual
        if self.diodes:
            va = self._gather2(x2, self._di_a)
            vc = self._gather2(x2, self._di_c)
            v = va - vc
            i, gd = _diode_iv_lanes(v, di_vt, di_isat)
            ires = i - gd * v
            quant[:, self._di_A_pos] = gd[:, :, None]
            quant[:, self._di_b_q[:, 0]] = -ires
            quant[:, self._di_b_q[:, 1]] = ires
        if swap is not None and swap.any():
            swap_slots = np.zeros((n_lanes, n_A), dtype=bool)
            swap_slots[:, self._mos_A_pos] = swap[:, :, None]
            A_idx = np.where(swap_slots, self._A_idx_swap,
                             self._A_idx_norm)
            idx = np.concatenate(
                [A_idx,
                 np.broadcast_to(self._b_idx_off, (n_lanes, n_b))],
                axis=1)
        else:
            idx = self._AB_idx_norm
        _scatter_lanes(flat2, idx, quant * self._AB_sign)

    def residual_lanes(self, x2: np.ndarray,
                       temp_c: float) -> np.ndarray:
        """Accumulated true device currents as a padded lane rhs.

        The quasi-Newton lane loop updates via the residual form
        ``dx = M (b_step + I_nl(x) - A_step x)``: because the Newton
        linearization agrees with the device at its expansion point,
        ``b_dev - A_dev x`` collapses to the physical device current at
        ``x``, stamped into the two terminal rows.  That makes chord
        iterations need only this current evaluation — the full
        Jacobian scatter of :meth:`apply_lanes` runs solely on refactor
        passes.  Returns a fresh ``(n_lanes, size + 1)`` array (last
        column is the ground scrap slot).

        This is the hottest lane kernel, so it is written for minimum
        numpy op count: one fused terminal gather through a
        zero-padded iterate, branch-free normalized-frame math
        (``vns = pol min(pol vd, pol vs)``, ``vds = |vd - vs|``, slot
        sign ``-sign(vd - vs)``), and one cached-flat-index bincount
        scatter.
        """
        beta, nvt, vth, lam, di_isat, di_vt = self._temp_params(temp_c)
        n_lanes, size = x2.shape[0], self.size
        x2p = self._res_pad_cache.get(n_lanes)
        if x2p is None:
            x2p = np.zeros((n_lanes, size + 1))
            self._res_pad_cache[n_lanes] = x2p
        x2p[:, :size] = x2
        g = x2p[:, self._res_gather]
        nm = len(self.mosfets)
        parts = []
        if nm:
            vd, vg, vs = g[:, :nm], g[:, nm:2 * nm], g[:, 2 * nm:3 * nm]
            pol = self._mos_pol
            pvd = pol * vd
            pvs = pol * vs
            d = vd - vs
            vgs = pol * vg - np.minimum(pvd, pvs)
            ids = _mosfet_ids_lanes(beta, nvt, vth, lam, vgs, np.abs(d))
            # b slot 0 targets the physical drain row; the current into
            # it is pol*ids in the normalized frame, which collapses to
            # the polarity-free -sign(vd - vs) * ids.
            i_slot = np.sign(d) * ids
            parts += [-i_slot, i_slot]
        if self.diodes:
            va, vc = g[:, 3 * nm:3 * nm + len(self.diodes)], \
                g[:, 3 * nm + len(self.diodes):]
            arg = np.minimum((va - vc) / di_vt, _DIODE_EXP_CLAMP)
            i = di_isat * (np.exp(arg) - 1.0)
            parts += [-i, i]
        vals = parts[0] if len(parts) == 1 else \
            np.concatenate(parts, axis=1)
        flat_idx = self._res_flat_cache.get(n_lanes)
        if flat_idx is None:
            stride = size + 1
            flat_idx = (self._res_idx
                        + (np.arange(n_lanes) * stride)[:, None]).ravel()
            self._res_flat_cache[n_lanes] = flat_idx
        acc = np.bincount(flat_idx, weights=vals.ravel(),
                          minlength=n_lanes * (size + 1))
        return acc.reshape(n_lanes, size + 1)

    @staticmethod
    def _gather2(x2: np.ndarray, idx: np.ndarray) -> np.ndarray:
        """Per-lane gather: ground sentinel ``-1`` reads 0 V."""
        return np.where(idx >= 0, x2[:, idx], 0.0)


def _mosfet_curves_lanes(beta, nvt, vth, lam, vgs, vds):
    """Numpy-native mirror of :func:`~repro.spice.mosfet
    .mosfet_curves_vec` for 2-D lane batches.

    Same formulas and clamps; the transcendentals are numpy's SIMD
    ``exp``/``log1p`` instead of the scalar :mod:`math` calls, so
    results agree with the per-lane path only to the last ulp (the lane
    kernel's documented fp tolerance).
    """
    vov = vgs - vth
    u = vov / nvt
    uc = np.clip(u, -_MOS_EXP_CLAMP, _MOS_EXP_CLAMP)
    sp = np.where(u > _MOS_EXP_CLAMP, u,
                  np.where(u < -_MOS_EXP_CLAMP, 0.0,
                           np.log1p(np.exp(uc))))
    sg = np.where(u > _MOS_EXP_CLAMP, 1.0,
                  np.where(u < -_MOS_EXP_CLAMP, 0.0,
                           1.0 / (1.0 + np.exp(-uc))))
    veff = nvt * sp
    clm = 1.0 + lam * vds
    tri = vds < veff
    ids_tri = beta * (veff - 0.5 * vds) * vds * clm
    gm_tri = beta * vds * clm * sg
    gds_tri = beta * ((veff - vds) * clm + (veff - 0.5 * vds) * vds * lam)
    half_beta_veff2 = 0.5 * beta * veff * veff
    ids_sat = half_beta_veff2 * clm
    gm_sat = beta * veff * clm * sg
    gds_sat = half_beta_veff2 * lam
    ids = np.where(tri, ids_tri, ids_sat)
    gm = np.where(tri, gm_tri, gm_sat)
    gds = np.where(tri, gds_tri, gds_sat)
    return ids, gm, gds


def _mosfet_ids_lanes(beta, nvt, vth, lam, vgs, vds):
    """Drain current only — the cheap core of
    :func:`_mosfet_curves_lanes` for chord (residual) iterations.

    Uses the exact branch-free softplus ``max(u, 0) + log1p(exp(-|u|))``
    instead of the clamp-and-select of the curve kernel: same value to
    rounding everywhere (the clamp only guards ``exp`` overflow, which
    the ``-|u|`` argument rules out) with three fewer ufunc dispatches —
    this runs once per chord iteration."""
    u = (vgs - vth) / nvt
    sp = np.maximum(u, 0.0) + np.log1p(np.exp(-np.abs(u)))
    veff = nvt * sp
    clm = 1.0 + lam * vds
    return np.where(vds < veff,
                    beta * (veff - 0.5 * vds) * vds * clm,
                    0.5 * beta * veff * veff * clm)


def _diode_iv_lanes(v, vt, isat):
    """Numpy-native mirror of :func:`~repro.spice.devices.diode_iv_vec`
    for 2-D lane batches (same clamp, numpy ``exp``)."""
    arg = np.minimum(v / vt, _DIODE_EXP_CLAMP)
    e = np.exp(arg)
    i = isat * (e - 1.0)
    gd = isat * e / vt
    return i, gd


def compile_dynamic(devices, size: int) -> DynamicPlan | None:
    if not all(type(d) is Capacitor for d in devices):
        return None
    return DynamicPlan(list(devices), size)


def compile_nonlinear(devices, size: int) -> NonlinearPlan | None:
    for dev in devices:
        if type(dev) is Mosfet:
            if dev.drain.index == dev.source.index:
                # Degenerate drain-tied-source devices would reorder
                # same-slot accumulation under a swap; keep the exact
                # per-device path for them.
                return None
        elif type(dev) is not Diode:
            return None
    return NonlinearPlan(list(devices), size)


class CompiledPlans:
    """All compiled layers of one system (``None`` layers fall back)."""

    __slots__ = ("static", "dynamic", "sources", "nonlinear")

    def __init__(self, static, dynamic, sources, nonlinear):
        self.static = static
        self.dynamic = dynamic
        self.sources = sources
        self.nonlinear = nonlinear


def compile_plans(devices, dynamic, sources, nonlinear, num_nodes: int,
                  size: int) -> CompiledPlans:
    """Compile every layer of a system; unsupported layers are ``None``."""
    return CompiledPlans(
        compile_static(devices, num_nodes),
        compile_dynamic(dynamic, size),
        compile_sources(sources, num_nodes),
        compile_nonlinear(nonlinear, size),
    )
