"""Compiled stamp plans: vectorized MNA assembly kernels.

The per-device stamping protocol (:mod:`repro.spice.netlist`) is flexible
but slow: every Newton iteration walks Python device objects one by one
and funnels scalar writes through :class:`~repro.spice.netlist.Stamper`
methods.  A *stamp plan* compiles each assembly layer into flat numpy
index/value arrays once per :class:`~repro.spice.mna.System`, so the hot
loop becomes a handful of gathers, elementwise array math and one
``np.add.at`` scatter per layer.

Bitwise parity with the per-device path is a hard requirement (the
default engine configuration must keep golden outputs byte-identical),
and the plans are built for it:

* scatters preserve the per-device stamp order, so floating-point
  accumulation happens in exactly the legacy sequence;
* entries that the ``Stamper`` would drop (ground terminals) are
  redirected to a scrap slot past the end of the flattened system
  instead of changing the slot structure;
* the transcendental core of the device models (``exp``, ``log1p``) is
  evaluated with the same scalar :mod:`math` calls as the per-device
  path (numpy's SIMD transcendentals differ in the last ulp), while all
  surrounding arithmetic is vectorized.

A layer that contains a device the compiler does not understand falls
back to the per-device path wholesale — partial compilation would break
the accumulation-order guarantee.
"""

from __future__ import annotations

import math

import numpy as np

from repro.spice.devices import _EXP_CLAMP as _DIODE_EXP_CLAMP
from repro.spice.devices import (
    Capacitor,
    CurrentSource,
    Diode,
    VoltageSource,
    diode_iv_vec,
    thermal_voltage,
)
from repro.spice.mosfet import _EXP_CLAMP as _MOS_EXP_CLAMP
from repro.spice.mosfet import Mosfet, mosfet_curves_vec


class UnsupportedStamp(Exception):
    """A device stamped in a way the plan compiler cannot record."""


class _Recorder:
    """Duck-typed :class:`Stamper` that records stamps instead of applying
    them.  Raw ``A``/``b``/``ctx`` access raises :class:`UnsupportedStamp`
    so devices that bypass the stamp methods trigger a layer fallback.
    """

    def __init__(self, num_nodes: int):
        self.num_nodes = num_nodes
        self.mat: list[tuple[int, int, float]] = []
        self.rhs: list[tuple[int, float]] = []

    @property
    def A(self):
        raise UnsupportedStamp("raw matrix access is not plan-compilable")

    @property
    def b(self):
        raise UnsupportedStamp("raw rhs access is not plan-compilable")

    @property
    def ctx(self):
        raise UnsupportedStamp("static stamps may not read analysis state")

    # mirror Stamper's write methods (and their ground handling) exactly
    def conductance(self, a, b, g):
        ia, ib = a.index, b.index
        if ia >= 0:
            self.mat.append((ia, ia, g))
        if ib >= 0:
            self.mat.append((ib, ib, g))
        if ia >= 0 and ib >= 0:
            self.mat.append((ia, ib, -g))
            self.mat.append((ib, ia, -g))

    def transconductance(self, out_p, out_n, in_p, in_n, gm):
        op, on = out_p.index, out_n.index
        ip, in_ = in_p.index, in_n.index
        if op >= 0:
            if ip >= 0:
                self.mat.append((op, ip, gm))
            if in_ >= 0:
                self.mat.append((op, in_, -gm))
        if on >= 0:
            if ip >= 0:
                self.mat.append((on, ip, -gm))
            if in_ >= 0:
                self.mat.append((on, in_, gm))

    def current(self, a, b, i):
        if a.index >= 0:
            self.rhs.append((a.index, -i))
        if b.index >= 0:
            self.rhs.append((b.index, i))

    def branch_row(self, branch):
        return self.num_nodes + branch

    def incidence(self, p, n, branch):
        row = self.branch_row(branch)
        ip, in_ = p.index, n.index
        if ip >= 0:
            self.mat.append((ip, row, 1.0))
            self.mat.append((row, ip, 1.0))
        if in_ >= 0:
            self.mat.append((in_, row, -1.0))
            self.mat.append((row, in_, -1.0))

    def voltage_source(self, p, n, branch, value):
        self.incidence(p, n, branch)
        self.rhs.append((self.branch_row(branch), value))

    def branch_rhs(self, branch, value):
        self.rhs.append((self.branch_row(branch), value))


class StaticPlan:
    """Recorded value-only stamps as flat index/value arrays."""

    def __init__(self, rows, cols, vals):
        self.rows = np.asarray(rows, dtype=np.intp)
        self.cols = np.asarray(cols, dtype=np.intp)
        self.vals = np.asarray(vals, dtype=float)

    def assemble(self, size: int) -> np.ndarray:
        A = np.zeros((size, size))
        np.add.at(A, (self.rows, self.cols), self.vals)
        return A


def compile_static(devices, num_nodes: int) -> StaticPlan | None:
    """Record every device's static stamps; ``None`` on fallback."""
    rec = _Recorder(num_nodes)
    try:
        for dev in devices:
            dev.stamp_static(rec)
    except UnsupportedStamp:
        return None
    if rec.rhs:
        # The engine discards the static-layer rhs (see System._build_static)
        # and so does the plan; record nothing rather than diverge.
        pass
    rows = [r for r, _, _ in rec.mat]
    cols = [c for _, c, _ in rec.mat]
    vals = [v for _, _, v in rec.mat]
    return StaticPlan(rows, cols, vals)


def _scrap_flat(row, col, size):
    """Flat index of (row, col), or the scrap slot when either is ground."""
    if row < 0 or col < 0:
        return size * size
    return row * size + col


def _scrap_row(row, size):
    return size if row < 0 else row


class DynamicPlan:
    """Vectorized capacitor companion stamps (backward Euler / trap)."""

    def __init__(self, caps: list[Capacitor], size: int):
        self.caps = caps
        n = len(caps)
        self.size = size
        ia = np.array([c.a.index for c in caps], dtype=np.intp)
        ib = np.array([c.b.index for c in caps], dtype=np.intp)
        self.ia, self.ib = ia, ib
        self.cap = np.array([c.capacitance for c in caps])
        # A slots per cap: (a,a)+ (b,b)+ (a,b)- (b,a)-  in Stamper order.
        mat_idx = np.empty((n, 4), dtype=np.intp)
        for k, c in enumerate(caps):
            a, b = c.a.index, c.b.index
            mat_idx[k] = (_scrap_flat(a, a, size), _scrap_flat(b, b, size),
                          _scrap_flat(a, b, size), _scrap_flat(b, a, size))
        self._mat_idx = mat_idx.ravel()
        self._mat_sign = np.tile(np.array([1.0, 1.0, -1.0, -1.0]), n)
        # b slots per cap: current(b, a, ieq) => b[b]-=ieq, b[a]+=ieq.
        rhs_idx = np.empty((n, 2), dtype=np.intp)
        for k, c in enumerate(caps):
            rhs_idx[k] = (_scrap_row(c.b.index, size),
                          _scrap_row(c.a.index, size))
        self._rhs_idx = rhs_idx.ravel()
        self._rhs_sign = np.tile(np.array([-1.0, 1.0]), n)
        self._i_prev = np.array([c._i_prev for c in caps])
        self._use_vec = n >= VEC_CROSSOVER
        self._rhs_meta_cache: dict = {}

    def _geq(self, dt: float, method: str) -> np.ndarray:
        if method == "trap":
            return 2.0 * self.cap / dt
        return self.cap / dt

    def _rhs_loop_meta(self, dt: float, method: str) -> tuple:
        """Per-cap ``(slot_b, slot_a, ia, ib, geq)`` tuples for the scalar
        rhs loop, cached per ``(dt, method)`` like the step matrix."""
        key = (dt, method)
        meta = self._rhs_meta_cache.get(key)
        if meta is None:
            geq = self._geq(dt, method)
            ri = self._rhs_idx
            meta = tuple(
                (int(ri[2 * k]), int(ri[2 * k + 1]), int(self.ia[k]),
                 int(self.ib[k]), float(geq[k]))
                for k in range(len(self.caps)))
            if len(self._rhs_meta_cache) >= 64:
                self._rhs_meta_cache.clear()
            self._rhs_meta_cache[key] = meta
        return meta

    def stamp_rhs_loop(self, bl: list, dt: float, method: str,
                       x_prev: np.ndarray) -> None:
        """Scalar-loop variant of :meth:`stamp_rhs` over a plain list.

        ``bl`` carries a trailing scrap slot, so ground rows (slot index
        ``size`` — the last element) are absorbed without branching; the
        ``-1`` voltage sentinel reads ground as 0 V.  Adds/subtracts in
        the exact :meth:`stamp_rhs` order, so the result is bitwise the
        same (``x -= y`` is ``x += (-y)`` exactly).
        """
        meta = self._rhs_loop_meta(dt, method)
        xl = x_prev.tolist()
        xl.append(0.0)
        if method == "trap":
            ip = self._i_prev.tolist()
            for k, (sb, sa, ia, ib, g) in enumerate(meta):
                ieq = g * (xl[ia] - xl[ib]) + ip[k]
                bl[sb] -= ieq
                bl[sa] += ieq
        else:
            for sb, sa, ia, ib, g in meta:
                ieq = g * (xl[ia] - xl[ib])
                bl[sb] -= ieq
                bl[sa] += ieq

    def stamp_matrix(self, A: np.ndarray, dt: float, method: str) -> None:
        """Add the companion conductances into ``A`` (dt-dependent only)."""
        geq = self._geq(dt, method)
        flat = np.empty(A.size + 1)
        flat[:A.size] = A.ravel()
        flat[A.size] = 0.0
        np.add.at(flat, self._mat_idx,
                  (np.repeat(geq, 4) * self._mat_sign))
        A[:] = flat[:A.size].reshape(A.shape)

    def stamp_rhs(self, b_padded: np.ndarray, dt: float, method: str,
                  x_prev: np.ndarray) -> None:
        """Add the companion currents into the padded rhs buffer."""
        va = np.where(self.ia >= 0, x_prev[self.ia], 0.0)
        vb = np.where(self.ib >= 0, x_prev[self.ib], 0.0)
        v_prev = va - vb
        geq = self._geq(dt, method)
        if method == "trap":
            ieq = geq * v_prev + self._i_prev
        else:
            ieq = geq * v_prev
        np.add.at(b_padded, self._rhs_idx,
                  np.repeat(ieq, 2) * self._rhs_sign)

    def accept_step(self, x_prev: np.ndarray, x_now: np.ndarray,
                    dt: float, method: str) -> None:
        """Vectorized trapezoidal history update (no-op for BE)."""
        if method != "trap":
            return
        va_p = np.where(self.ia >= 0, x_prev[self.ia], 0.0)
        vb_p = np.where(self.ib >= 0, x_prev[self.ib], 0.0)
        va_n = np.where(self.ia >= 0, x_now[self.ia], 0.0)
        vb_n = np.where(self.ib >= 0, x_now[self.ib], 0.0)
        self._i_prev = (2.0 * self.cap / dt * ((va_n - vb_n) - (va_p - vb_p))
                        - self._i_prev)
        # Keep the device objects authoritative for cross-analysis chaining.
        for dev, val in zip(self.caps, self._i_prev):
            dev._i_prev = float(val)


class SourcePlan:
    """Pre-resolved rhs targets for independent sources.

    Waveforms are read through the *device* at evaluation time, so
    reprogramming a source's waveform between analyses (the DRAM runner
    does this every cycle) needs no recompilation.
    """

    def __init__(self, entries):
        # entries: ("v", device, row) | ("i", device, row_p, row_n)
        self.entries = entries

    def apply(self, b: np.ndarray, t: float) -> None:
        for entry in self.entries:
            if entry[0] == "v":
                b[entry[2]] += entry[1].waveform.value(t)
            else:
                val = entry[1].waveform.value(t)
                _, _, rp, rn = entry
                if rp >= 0:
                    b[rp] -= val
                if rn >= 0:
                    b[rn] += val

    def apply_loop(self, bl: list, t: float) -> None:
        """List variant of :meth:`apply` for the scalar step-rhs path.

        ``bl`` carries a trailing scrap slot; a ground row stored as
        ``-1`` lands on it (the last element) instead of branching.
        """
        for entry in self.entries:
            if entry[0] == "v":
                bl[entry[2]] += entry[1].waveform.value(t)
            else:
                val = entry[1].waveform.value(t)
                bl[entry[2]] -= val
                bl[entry[3]] += val


def compile_sources(devices, num_nodes: int) -> SourcePlan | None:
    entries = []
    for dev in devices:
        if type(dev) is VoltageSource:
            entries.append(("v", dev, num_nodes + dev._branch))
        elif type(dev) is CurrentSource:
            entries.append(("i", dev, dev.p.index, dev.n.index))
        else:
            return None
    return SourcePlan(entries)


#: Per-mosfet A-slot signs: 4 conductance then 4 transconductance entries.
_MOS_SIGNS = np.array([1.0, 1.0, -1.0, -1.0, 1.0, -1.0, -1.0, 1.0])
_DIODE_SIGNS = np.array([1.0, 1.0, -1.0, -1.0])


#: Device count above which the numpy evaluation path beats the fused
#: scalar loop (numpy's per-op overhead amortises, the Python loop does
#: not).  Below it — every DRAM column netlist — the loop wins ~2x.
VEC_CROSSOVER = 64


class NonlinearPlan:
    """One-pass MOSFET + diode linearization and scatter.

    All nonlinear devices are evaluated in one pass per Newton iteration
    and scattered with a single ``np.add.at`` per target (matrix, rhs)
    in original device order.  MOSFET source/drain swaps are handled by
    selecting between two precompiled slot-index variants per device.

    Two bitwise-identical evaluation kernels back :meth:`apply`: an
    array pass (:func:`~repro.spice.mosfet.mosfet_curves_vec`,
    :func:`~repro.spice.devices.diode_iv_vec`) for large device counts,
    and a fused scalar loop for small ones, where numpy's fixed per-op
    overhead dominates the array math (the crossover is
    :data:`VEC_CROSSOVER`).
    """

    def __init__(self, devices, size: int):
        self.size = size
        self.mosfets = [d for d in devices if type(d) is Mosfet]
        self.diodes = [d for d in devices if type(d) is Diode]
        n_mos, n_di = len(self.mosfets), len(self.diodes)

        # --- global slot layout (device order) -------------------------
        n_A = 8 * n_mos + 4 * n_di
        n_b = 2 * (n_mos + n_di)
        self._A_idx_norm = np.full(n_A, size * size, dtype=np.intp)
        self._A_idx_swap = np.full(n_A, size * size, dtype=np.intp)
        self._A_sign = np.empty(n_A)
        self._A_swap_owner = np.zeros(n_A, dtype=bool)  # mosfet-owned slots
        self._b_idx = np.full(n_b, size, dtype=np.intp)
        mos_A_pos = np.empty((n_mos, 8), dtype=np.intp)
        mos_b_pos = np.empty((n_mos, 2), dtype=np.intp)
        di_A_pos = np.empty((n_di, 4), dtype=np.intp)
        di_b_pos = np.empty((n_di, 2), dtype=np.intp)

        a_cur = b_cur = 0
        i_mos = i_di = 0
        for dev in devices:
            if type(dev) is Mosfet:
                d, g, s = (dev.drain.index, dev.gate.index,
                           dev.source.index)
                sl = slice(a_cur, a_cur + 8)
                pos = np.arange(a_cur, a_cur + 8)
                mos_A_pos[i_mos] = pos
                # conductance slots (orientation-independent positions)
                cond = [_scrap_flat(d, d, size), _scrap_flat(s, s, size),
                        _scrap_flat(d, s, size), _scrap_flat(s, d, size)]
                # transconductance slots, normal (nd=d) / swapped (nd=s)
                tc_norm = [_scrap_flat(d, g, size), _scrap_flat(d, s, size),
                           _scrap_flat(s, g, size), _scrap_flat(s, s, size)]
                tc_swap = [_scrap_flat(s, g, size), _scrap_flat(s, d, size),
                           _scrap_flat(d, g, size), _scrap_flat(d, d, size)]
                self._A_idx_norm[sl] = cond + tc_norm
                self._A_idx_swap[sl] = cond + tc_swap
                self._A_sign[sl] = _MOS_SIGNS
                self._A_swap_owner[sl] = True
                mos_b_pos[i_mos] = (b_cur, b_cur + 1)
                self._b_idx[b_cur] = _scrap_row(d, size)
                self._b_idx[b_cur + 1] = _scrap_row(s, size)
                a_cur += 8
                b_cur += 2
                i_mos += 1
            else:
                a, c = dev.anode.index, dev.cathode.index
                sl = slice(a_cur, a_cur + 4)
                di_A_pos[i_di] = np.arange(a_cur, a_cur + 4)
                self._A_idx_norm[sl] = [
                    _scrap_flat(a, a, size), _scrap_flat(c, c, size),
                    _scrap_flat(a, c, size), _scrap_flat(c, a, size)]
                self._A_idx_swap[sl] = self._A_idx_norm[sl]
                self._A_sign[sl] = _DIODE_SIGNS
                di_b_pos[i_di] = (b_cur, b_cur + 1)
                self._b_idx[b_cur] = _scrap_row(a, size)
                self._b_idx[b_cur + 1] = _scrap_row(c, size)
                a_cur += 4
                b_cur += 2
                i_di += 1

        self._mos_A_pos = mos_A_pos
        self._mos_b_pos = mos_b_pos
        self._di_A_pos = di_A_pos
        self._di_b_pos = di_b_pos

        # --- combined scatter layout -----------------------------------
        # The target buffer is one contiguous scratch laid out as
        # [A (size^2) | scrapA | b (size) | scrapB], so the matrix and
        # rhs updates land in a single np.add.at (A entries first, then
        # b entries — the exact legacy accumulation order, into disjoint
        # regions).
        b_off = size * size + 1
        self._b_off = b_off
        self._b_idx_off = self._b_idx + b_off
        self._AB_idx_norm = np.concatenate(
            [self._A_idx_norm, self._b_idx_off])
        self._AB_sign = np.concatenate([self._A_sign, np.ones(n_b)])
        self._quant = np.empty(n_A + n_b)
        self._mos_b_q = mos_b_pos + n_A   # b-value positions in _quant
        self._di_b_q = di_b_pos + n_A

        # --- per-device gather indices and polarity --------------------
        self._mos_d = np.array([m.drain.index for m in self.mosfets],
                               dtype=np.intp)
        self._mos_g = np.array([m.gate.index for m in self.mosfets],
                               dtype=np.intp)
        self._mos_s = np.array([m.source.index for m in self.mosfets],
                               dtype=np.intp)
        self._mos_pol = np.array(
            [1.0 if m.params.polarity == "n" else -1.0
             for m in self.mosfets])
        self._di_a = np.array([d.anode.index for d in self.diodes],
                              dtype=np.intp)
        self._di_c = np.array([d.cathode.index for d in self.diodes],
                              dtype=np.intp)
        self._temp_cache: dict[float, tuple] = {}

        # fused-scalar-loop support (small device counts)
        self._use_vec = (n_mos + n_di) >= VEC_CROSSOVER
        self._n_A = n_A
        self._n_b = n_b
        self._loop_cache: dict[float, tuple] = {}
        # Swap-pattern cache, keyed by an int bitmask (scalar loop) or a
        # bool tuple (array pass) — the key spaces cannot collide.
        self._swap_idx_cache: dict = {}
        # Persistent value staging for the scalar loop; every slot is
        # rewritten on every call, so reuse is safe.
        self._qa = [0.0] * n_A
        self._vb = [0.0] * n_b

    # ------------------------------------------------------------------
    def _temp_params(self, temp_c: float) -> tuple:
        """Per-device temperature-dependent parameters (scalar-computed
        with the exact device-model methods, then cached per temp)."""
        cached = self._temp_cache.get(temp_c)
        if cached is not None:
            return cached
        beta = np.array([m.params.kp_at(temp_c) * (m.w / m.l)
                         for m in self.mosfets])
        nvt = np.array([m.params.n_ss * thermal_voltage(temp_c)
                        for m in self.mosfets])
        vth = np.array([m.params.vth_at(temp_c) for m in self.mosfets])
        lam = np.array([m.params.lam for m in self.mosfets])
        di_isat = np.array([d.isat_at(temp_c) for d in self.diodes])
        di_vt = np.array([d.emission * thermal_voltage(temp_c)
                          for d in self.diodes])
        cached = (beta, nvt, vth, lam, di_isat, di_vt)
        if len(self._temp_cache) > 16:
            self._temp_cache.clear()
        self._temp_cache[temp_c] = cached
        return cached

    @staticmethod
    def _gather(x: np.ndarray, idx: np.ndarray) -> np.ndarray:
        return np.where(idx >= 0, x[idx], 0.0)

    def _loop_meta(self, temp_c: float) -> tuple:
        """Per-device metadata tuples for the fused scalar loop, merged
        with the temperature-resolved parameters and cached per temp."""
        cached = self._loop_cache.get(temp_c)
        if cached is not None:
            return cached
        beta, nvt, vth, lam, di_isat, di_vt = self._temp_params(temp_c)
        mos_meta = tuple(
            (int(self._mos_d[i]), int(self._mos_g[i]), int(self._mos_s[i]),
             float(self._mos_pol[i]), float(beta[i]), float(nvt[i]),
             float(vth[i]), float(lam[i]), int(self._mos_A_pos[i, 0]),
             int(self._mos_b_pos[i, 0]))
            for i in range(len(self.mosfets)))
        di_meta = tuple(
            (int(self._di_a[i]), int(self._di_c[i]), float(di_isat[i]),
             float(di_vt[i]), int(self._di_A_pos[i, 0]),
             int(self._di_b_pos[i, 0]))
            for i in range(len(self.diodes)))
        cached = (mos_meta, di_meta)
        if len(self._loop_cache) > 16:
            self._loop_cache.clear()
        self._loop_cache[temp_c] = cached
        return cached

    def _build_swap_idx(self, sw: list) -> np.ndarray:
        swap_slots = np.zeros(self._n_A, dtype=bool)
        swap_slots[self._mos_A_pos] = np.array(sw)[:, None]
        A_idx = np.where(swap_slots, self._A_idx_swap, self._A_idx_norm)
        return np.concatenate([A_idx, self._b_idx_off])

    def _cache_swap_idx(self, key, idx: np.ndarray) -> None:
        if len(self._swap_idx_cache) > 128:
            self._swap_idx_cache.clear()
        self._swap_idx_cache[key] = idx

    def _swap_AB_idx(self, sw: list) -> np.ndarray:
        """Combined slot index array for a given per-mosfet swap pattern."""
        key = tuple(sw)
        idx = self._swap_idx_cache.get(key)
        if idx is None:
            idx = self._build_swap_idx(sw)
            self._cache_swap_idx(key, idx)
        return idx

    def _swap_AB_idx_mask(self, mask: int) -> np.ndarray:
        """Like :meth:`_swap_AB_idx`, keyed by an int swap bitmask."""
        idx = self._swap_idx_cache.get(mask)
        if idx is None:
            idx = self._build_swap_idx(
                [(mask >> k) & 1 for k in range(len(self.mosfets))])
            self._cache_swap_idx(mask, idx)
        return idx

    def apply(self, flat: np.ndarray, x: np.ndarray,
              temp_c: float) -> None:
        """Linearize every nonlinear device around ``x`` and scatter into
        the combined ``[A | scrapA | b | scrapB]`` scratch buffer."""
        if self._use_vec:
            self._apply_vec(flat, x, temp_c)
        else:
            self._apply_loop(flat, x, temp_c)

    def _apply_loop(self, flat: np.ndarray, x: np.ndarray,
                    temp_c: float) -> None:
        """Fused scalar loop over all nonlinear devices.

        Every expression mirrors the per-device model code
        (:func:`~repro.spice.mosfet.mosfet_curves`, :meth:`Diode.iv`)
        operation for operation, so the scattered values are bitwise
        those of the vectorized kernel and of the legacy stamp walk.
        The slot signs are folded into the written values (negation is
        exact), saving the sign-vector multiply of the array path.
        """
        mos_meta, di_meta = self._loop_meta(temp_c)
        xl = x.tolist()
        xl.append(0.0)  # ground sentinel: index -1 reads 0 V branch-free
        qa = self._qa
        vb = self._vb
        mask = 0
        exp = math.exp
        log1p = math.log1p
        for k, (di, gi, si, p, be, nv, vt, la, a0, b0) in \
                enumerate(mos_meta):
            vd = xl[di]
            vg = xl[gi]
            vs = xl[si]
            if p * (vd - vs) < 0.0:
                vnd = vs
                vns = vd
                mask |= 1 << k
                s = 1.0
            else:
                vnd = vd
                vns = vs
                s = -1.0
            vgs = p * (vg - vns)
            vds = p * (vnd - vns)
            vov = vgs - vt
            u = vov / nv
            if u > _MOS_EXP_CLAMP:
                sp = u
                sg = 1.0
            elif u < -_MOS_EXP_CLAMP:
                sp = 0.0
                sg = 0.0
            else:
                sp = log1p(exp(u))
                sg = 1.0 / (1.0 + exp(-u))
            veff = nv * sp
            clm = 1.0 + la * vds
            if vds < veff:  # triode
                gm = be * vds * clm * sg
                gds = be * ((veff - vds) * clm
                            + (veff - 0.5 * vds) * vds * la)
                i_real = p * (be * (veff - 0.5 * vds) * vds * clm)
            else:  # saturation
                hb = 0.5 * be * veff * veff
                gm = be * veff * clm * sg
                gds = hb * la
                i_real = p * (hb * clm)
            residual = i_real - gds * (vnd - vns) - gm * (vg - vns)
            qa[a0] = gds
            qa[a0 + 1] = gds
            qa[a0 + 2] = -gds
            qa[a0 + 3] = -gds
            qa[a0 + 4] = gm
            qa[a0 + 5] = -gm
            qa[a0 + 6] = -gm
            qa[a0 + 7] = gm
            vb[b0] = s * residual
            vb[b0 + 1] = -s * residual
        for (ai, ci, isat, dvt, a0, b0) in di_meta:
            v = xl[ai] - xl[ci]
            arg = v / dvt
            if arg > _DIODE_EXP_CLAMP:
                arg = _DIODE_EXP_CLAMP
            e = exp(arg)
            i = isat * (e - 1.0)
            gd = isat * e / dvt
            ires = i - gd * v
            qa[a0] = gd
            qa[a0 + 1] = gd
            qa[a0 + 2] = -gd
            qa[a0 + 3] = -gd
            vb[b0] = -ires
            vb[b0 + 1] = ires
        quant = self._quant
        n_A = self._n_A
        quant[:n_A] = qa
        quant[n_A:] = vb
        idx = self._swap_AB_idx_mask(mask) if mask else self._AB_idx_norm
        np.add.at(flat, idx, quant)

    def _apply_vec(self, flat: np.ndarray, x: np.ndarray,
                   temp_c: float) -> None:
        """Array-pass evaluation (large device counts)."""
        beta, nvt, vth, lam, di_isat, di_vt = self._temp_params(temp_c)
        quant = self._quant
        if self.mosfets:
            pol = self._mos_pol
            vd = self._gather(x, self._mos_d)
            vg = self._gather(x, self._mos_g)
            vs = self._gather(x, self._mos_s)
            swap = pol * (vd - vs) < 0.0
            vnd = np.where(swap, vs, vd)
            vns = np.where(swap, vd, vs)
            vgs = pol * (vg - vns)
            vds = pol * (vnd - vns)
            ids, gm, gds = mosfet_curves_vec(beta, nvt, vth, lam, vgs, vds)
            i_real = pol * ids
            residual = i_real - gds * (vnd - vns) - gm * (vg - vns)
            quant[self._mos_A_pos[:, :4]] = gds[:, None]
            quant[self._mos_A_pos[:, 4:]] = gm[:, None]
            sgn = np.where(swap, 1.0, -1.0)
            quant[self._mos_b_q[:, 0]] = sgn * residual
            quant[self._mos_b_q[:, 1]] = (-sgn) * residual
        if self.diodes:
            va = self._gather(x, self._di_a)
            vc = self._gather(x, self._di_c)
            v = va - vc
            i, gd = diode_iv_vec(v, di_vt, di_isat)
            ires = i - gd * v
            quant[self._di_A_pos] = gd[:, None]
            quant[self._di_b_q[:, 0]] = -ires
            quant[self._di_b_q[:, 1]] = ires
        if self.mosfets and swap.any():
            idx = self._swap_AB_idx(swap.tolist())
        else:
            idx = self._AB_idx_norm
        np.add.at(flat, idx, quant * self._AB_sign)


def compile_dynamic(devices, size: int) -> DynamicPlan | None:
    if not all(type(d) is Capacitor for d in devices):
        return None
    return DynamicPlan(list(devices), size)


def compile_nonlinear(devices, size: int) -> NonlinearPlan | None:
    for dev in devices:
        if type(dev) is Mosfet:
            if dev.drain.index == dev.source.index:
                # Degenerate drain-tied-source devices would reorder
                # same-slot accumulation under a swap; keep the exact
                # per-device path for them.
                return None
        elif type(dev) is not Diode:
            return None
    return NonlinearPlan(list(devices), size)


class CompiledPlans:
    """All compiled layers of one system (``None`` layers fall back)."""

    __slots__ = ("static", "dynamic", "sources", "nonlinear")

    def __init__(self, static, dynamic, sources, nonlinear):
        self.static = static
        self.dynamic = dynamic
        self.sources = sources
        self.nonlinear = nonlinear


def compile_plans(devices, dynamic, sources, nonlinear, num_nodes: int,
                  size: int) -> CompiledPlans:
    """Compile every layer of a system; unsupported layers are ``None``."""
    return CompiledPlans(
        compile_static(devices, num_nodes),
        compile_dynamic(dynamic, size),
        compile_sources(sources, num_nodes),
        compile_nonlinear(nonlinear, size),
    )
