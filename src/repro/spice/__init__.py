"""A small SPICE-class electrical circuit simulator.

This package is the substrate that replaces the proprietary Titan simulator
used in the paper.  It provides:

* a netlist abstraction (:class:`~repro.spice.netlist.Circuit`) with named
  nodes and devices,
* linear devices (resistors, capacitors, independent sources) and a level-1
  MOSFET model with temperature-dependent mobility and threshold voltage,
* piecewise-linear / pulse waveforms for driving control signals,
* a modified-nodal-analysis (MNA) equation builder,
* a damped Newton-Raphson nonlinear solver with gmin regularisation,
* transient analysis (backward-Euler or trapezoidal integration) and a DC
  operating-point solver with gmin stepping.

The simulator is deliberately compact: it targets the ~30-node DRAM column
netlists built by :mod:`repro.dram`, not general-purpose circuit simulation.
It is nevertheless a complete nonlinear transient engine and is validated
against analytic solutions in the test suite.
"""

from repro.spice.backends import (
    BACKEND_CHOICES,
    BackendError,
    DenseBackend,
    SolverBackend,
    SparseBackend,
    available_backends,
    backend_default,
    register_backend,
    resolve_backend,
    set_backend_default,
)
from repro.spice.errors import (
    ConvergenceError,
    NetlistError,
    SingularMatrixError,
    SpiceError,
)
from repro.spice.netlist import Circuit, GROUND, Node
from repro.spice.devices import (
    Capacitor,
    CurrentSource,
    Diode,
    Resistor,
    VoltageSource,
)
from repro.spice.mosfet import Mosfet, MosfetParams, NMOS_DEFAULT, PMOS_DEFAULT
from repro.spice.waveforms import Constant, Pulse, PWL, Waveform
from repro.spice.transient import TransientResult, transient
from repro.spice.dc import dc_operating_point

__all__ = [
    "BACKEND_CHOICES",
    "BackendError",
    "Capacitor",
    "Circuit",
    "Constant",
    "ConvergenceError",
    "CurrentSource",
    "DenseBackend",
    "Diode",
    "GROUND",
    "Mosfet",
    "MosfetParams",
    "NMOS_DEFAULT",
    "NetlistError",
    "Node",
    "PMOS_DEFAULT",
    "PWL",
    "Pulse",
    "Resistor",
    "SingularMatrixError",
    "SolverBackend",
    "SparseBackend",
    "SpiceError",
    "TransientResult",
    "VoltageSource",
    "Waveform",
    "available_backends",
    "backend_default",
    "dc_operating_point",
    "register_backend",
    "resolve_backend",
    "set_backend_default",
    "transient",
]
