"""Time-domain waveforms for independent sources.

Waveforms drive the control signals of the DRAM column (word lines, precharge
equalise, sense enable, write enable, ...).  Each waveform can enumerate its
*breakpoints* — instants where its derivative is discontinuous — so the
transient engine can place time steps exactly on the corners instead of
smearing them across a step.
"""

from __future__ import annotations

import bisect
from typing import Sequence


class Waveform:
    """Base class: a scalar function of time."""

    def value(self, t: float) -> float:
        """Return the waveform value at time ``t`` (seconds)."""
        raise NotImplementedError

    def breakpoints(self, t0: float, t1: float) -> list[float]:
        """Return corner instants within ``[t0, t1]`` (may be empty)."""
        return []

    def __call__(self, t: float) -> float:
        return self.value(t)


class Constant(Waveform):
    """A DC level."""

    def __init__(self, level: float):
        self.level = float(level)

    def value(self, t: float) -> float:
        return self.level

    def __repr__(self):
        return f"Constant({self.level!r})"


class PWL(Waveform):
    """Piecewise-linear waveform given as ``[(t0, v0), (t1, v1), ...]``.

    Before the first point the waveform holds ``v0``; after the last point it
    holds the final value.  Time points must be non-decreasing; exactly
    coincident points model an ideal step (the later value wins).
    """

    def __init__(self, points: Sequence[tuple[float, float]]):
        if not points:
            raise ValueError("PWL requires at least one (time, value) point")
        times = [float(t) for t, _ in points]
        if any(b < a for a, b in zip(times, times[1:])):
            raise ValueError("PWL time points must be non-decreasing")
        self.times = times
        self.values = [float(v) for _, v in points]

    def value(self, t: float) -> float:
        times, values = self.times, self.values
        if t <= times[0]:
            return values[0]
        if t >= times[-1]:
            return values[-1]
        i = bisect.bisect_right(times, t)
        t0, t1 = times[i - 1], times[i]
        v0, v1 = values[i - 1], values[i]
        if t1 == t0:
            return v1
        frac = (t - t0) / (t1 - t0)
        return v0 + frac * (v1 - v0)

    def breakpoints(self, t0: float, t1: float) -> list[float]:
        return [t for t in self.times if t0 < t < t1]

    def __repr__(self):
        pts = list(zip(self.times, self.values))
        return f"PWL({pts!r})"


class Pulse(Waveform):
    """A (possibly repeating) trapezoidal pulse, mirroring SPICE ``PULSE``.

    Parameters
    ----------
    v1, v2:
        Initial and pulsed values.
    delay:
        Time of the first rising edge start.
    rise, fall:
        Edge transition times (must be > 0 to stay piecewise-linear-friendly).
    width:
        Time spent at ``v2`` between the edges.
    period:
        Repetition period; ``None`` yields a single pulse.
    """

    def __init__(self, v1, v2, delay=0.0, rise=1e-10, fall=1e-10,
                 width=1e-9, period=None):
        if rise <= 0 or fall <= 0:
            raise ValueError("rise and fall times must be positive")
        if width < 0:
            raise ValueError("pulse width must be non-negative")
        total = rise + width + fall
        if period is not None and period < total:
            raise ValueError("period shorter than rise+width+fall")
        self.v1 = float(v1)
        self.v2 = float(v2)
        self.delay = float(delay)
        self.rise = float(rise)
        self.fall = float(fall)
        self.width = float(width)
        self.period = None if period is None else float(period)

    def _phase(self, t: float) -> float:
        """Time since the start of the current pulse repetition."""
        tp = t - self.delay
        if tp < 0:
            return -1.0
        if self.period is not None:
            tp %= self.period
        return tp

    def value(self, t: float) -> float:
        tp = self._phase(t)
        if tp < 0:
            return self.v1
        if tp < self.rise:
            return self.v1 + (self.v2 - self.v1) * tp / self.rise
        tp -= self.rise
        if tp < self.width:
            return self.v2
        tp -= self.width
        if tp < self.fall:
            return self.v2 + (self.v1 - self.v2) * tp / self.fall
        return self.v1

    def breakpoints(self, t0: float, t1: float) -> list[float]:
        corners = [0.0, self.rise, self.rise + self.width,
                   self.rise + self.width + self.fall]
        out = []
        if self.period is None:
            for c in corners:
                tc = self.delay + c
                if t0 < tc < t1:
                    out.append(tc)
            return out
        # Repeating: enumerate periods overlapping [t0, t1].
        k0 = max(0, int((t0 - self.delay) / self.period) - 1)
        k = k0
        while True:
            base = self.delay + k * self.period
            if base > t1:
                break
            for c in corners:
                tc = base + c
                if t0 < tc < t1:
                    out.append(tc)
            k += 1
        return out

    def __repr__(self):
        return (f"Pulse(v1={self.v1}, v2={self.v2}, delay={self.delay}, "
                f"rise={self.rise}, fall={self.fall}, width={self.width}, "
                f"period={self.period})")


def step(t_step: float, v_before: float, v_after: float,
         slope_time: float = 1e-10) -> PWL:
    """A convenience near-ideal step waveform built from :class:`PWL`."""
    return PWL([(t_step, v_before), (t_step + slope_time, v_after)])


def merge_breakpoints(waveforms: Sequence[Waveform], t0: float, t1: float,
                      tol: float = 1e-15) -> list[float]:
    """Union of the breakpoints of several waveforms, sorted and de-duplicated."""
    raw = []
    for wf in waveforms:
        raw.extend(wf.breakpoints(t0, t1))
    raw.sort()
    merged: list[float] = []
    for t in raw:
        if not merged or t - merged[-1] > tol:
            merged.append(t)
    return merged
