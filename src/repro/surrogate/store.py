"""Active-learning calibration journal, persisted in the sharded store.

Every electrical border search that runs while a surrogate tier is
active is journaled as a **calibration point** — the tier tightens over
a campaign instead of repeating its misses.  Points live alongside the
electrical result entries in the same
:class:`~repro.store.sharded.ShardedStore` (the ``--checkpoint`` store
when one is configured), under their own request-hash axis: the journal
entry for one defect is addressed by a :class:`SequenceRequest` carrying
``tier="surrogate-cal"``, which hashes onto a namespace no simulation
result can occupy.  A resumed campaign therefore reloads its calibration
points exactly like it reloads its simulation results.

Entry format (one store object per ``(backend, tech, defect, rel_tol)``):
a list of plain dicts, one per stress combination —

``{"stress": {tcyc, duty, temp_c, vdd}, "resistance": float | None,
"always_faulty": bool, "never_faulty": bool}``

— deduplicated by stress (a re-run search replaces its point).  Plain
dicts keep the payload readable by any future schema without unpickling
project classes beyond the stdlib.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.analysis.border import BorderResult
from repro.defects.catalog import Defect
from repro.dram.tech import TechnologyParams, default_tech
from repro.engine.request import SequenceRequest
from repro.stress import NOMINAL_STRESS, StressConditions

if TYPE_CHECKING:
    from repro.store.sharded import ShardedStore


@dataclass(frozen=True)
class CalPoint:
    """One journaled electrical border at one stress combination."""

    stress: StressConditions
    resistance: float | None
    always_faulty: bool = False
    never_faulty: bool = False

    @property
    def found(self) -> bool:
        return self.resistance is not None

    def border(self, fails_high: bool, r_lo: float,
               r_hi: float) -> BorderResult:
        """Reconstruct the recorded search outcome."""
        return BorderResult(self.resistance, fails_high,
                            always_faulty=self.always_faulty,
                            never_faulty=self.never_faulty,
                            r_lo=r_lo, r_hi=r_hi)


def journal_request(defect: Defect, *, backend: str,
                    tech: TechnologyParams | None,
                    rel_tol: float) -> SequenceRequest:
    """The content-addressed key of one defect's calibration journal.

    ``rel_tol`` rides in the ops string — a border found at a different
    tolerance is a different calibration quantity.  The nominal stress
    stands in for the (per-point, not per-journal) stress axis.
    """
    site = defect.site()
    return SequenceRequest(
        backend=backend,
        tech=tech or default_tech(),
        defect_kind=site.kind,
        cell=site.cell,
        resistance=None,
        stress=NOMINAL_STRESS,
        ops=f"surrogate-cal rel_tol={rel_tol!r}",
        init_vc=0.0,
        tier="surrogate-cal",
    )


def _encode(point: CalPoint) -> dict:
    return {
        "stress": dataclasses.asdict(point.stress),
        "resistance": point.resistance,
        "always_faulty": point.always_faulty,
        "never_faulty": point.never_faulty,
    }


def _decode(raw: dict) -> CalPoint | None:
    try:
        stress = StressConditions(**raw["stress"])
        return CalPoint(stress, raw["resistance"],
                        bool(raw.get("always_faulty", False)),
                        bool(raw.get("never_faulty", False)))
    except (KeyError, TypeError, ValueError):
        return None


class CalibrationJournal:
    """Per-defect calibration point sets, memory-first, store-backed.

    Without a store the journal is process-local (the tier still
    tightens within a run); with one, every ``record`` is an atomic
    read-modify-write of the defect's entry, so points survive a
    SIGKILL mid-campaign and a resumed run starts from everything the
    dead one learned.
    """

    def __init__(self, store: "ShardedStore | None" = None):
        self.store = store
        self._cache: dict[str, dict[StressConditions, CalPoint]] = {}
        #: Points recovered from the persistent store (not recorded by
        #: this process) — the resume-observability counter.
        self.loaded_points = 0

    def _load(self, key: str) -> dict[StressConditions, CalPoint]:
        if key in self._cache:
            return self._cache[key]
        points: dict[StressConditions, CalPoint] = {}
        if self.store is not None:
            raw = self.store.get(key)
            if isinstance(raw, list):
                for entry in raw:
                    point = _decode(entry) if isinstance(entry, dict) \
                        else None
                    if point is not None:
                        points[point.stress] = point
                self.loaded_points += len(points)
        self._cache[key] = points
        return points

    def points(self, defect: Defect, *, backend: str,
               tech: TechnologyParams | None,
               rel_tol: float) -> list[CalPoint]:
        """Calibration points of one defect journal (load-once)."""
        key = journal_request(defect, backend=backend, tech=tech,
                              rel_tol=rel_tol).content_hash
        return list(self._load(key).values())

    def record(self, defect: Defect, *, backend: str,
               tech: TechnologyParams | None, rel_tol: float,
               stress: StressConditions,
               border: BorderResult) -> bool:
        """Journal one completed border search; True when it was news.

        Undetermined results (failed endpoint probes) are not
        calibration data and are skipped.
        """
        if (not border.found and not border.always_faulty
                and not border.never_faulty):
            return False
        point = CalPoint(stress, border.resistance,
                         border.always_faulty, border.never_faulty)
        key = journal_request(defect, backend=backend, tech=tech,
                              rel_tol=rel_tol).content_hash
        points = self._load(key)
        if points.get(stress) == point:
            return False
        points[stress] = point
        if self.store is not None:
            self.store.put(key, [_encode(p) for p in points.values()])
        return True
