"""The surrogate answer tier: serve, prior, fallback, refit.

One :class:`SurrogateTier` fronts the electrical engine with the
calibrated predictors of :mod:`repro.surrogate.br`:

* ``mode="prior"`` — every electrical border search still runs, but the
  bisection is seeded with the surrogate's estimate
  (:func:`repro.analysis.border.border_resistance`'s ``prior``), so it
  spends ~2 electrical probes instead of ~10 while returning the
  bitwise-identical border.  Full electrical confirmation, surrogate
  acceleration.
* ``mode="serve"`` — border and direction queries whose uncertainty
  falls under the per-query bound are answered surrogate-only (no
  electrical simulation at all); everything else falls back to the
  electrical engine with a prior.

Every fallback (and every prior-mode search) journals its electrical
result as a calibration point — the active-learning loop.  Counters
land on the engine's :class:`~repro.engine.cache.EngineStats`
(``surrogate_hits`` / ``surrogate_fallbacks`` / ``surrogate_refits``)
and the run diagnostics; phase timings are profiled under
``surrogate.predict`` / ``surrogate.serve`` / ``surrogate.direction`` /
``surrogate.refit``.

The process-wide **active tier** (:func:`set_active_tier` /
:func:`active_tier`) is consulted by
:func:`repro.core.border.find_border_resistance` and
:func:`repro.core.optimizer.optimize_defect`; it is ``None`` unless
``--surrogate`` (or :func:`~repro.engine.executor
.configure_default_engine`) installed one, so default runs are
untouched.
"""

from __future__ import annotations

import math

from repro.analysis.border import BorderResult
from repro.defects.catalog import Defect
from repro.dram.tech import TechnologyParams
from repro.profiling import profiler
from repro.stress import StressConditions, StressKind
from repro.surrogate.br import BRPredictor, Prediction
from repro.surrogate.store import CalibrationJournal

#: Serve-mode default: a border prediction is served surrogate-only
#: when its sigma is at or under this bound (decades).  The default
#: matches the search tolerance (rel_tol=0.05 ≈ 0.021 decades) — served
#: borders are as tight as electrical ones, or they are not served.
DEFAULT_BR_SIGMA_BOUND = 0.02

#: Serve-mode default: a direction tie-break is decided surrogate-only
#: when the top candidates' predicted failing-range scores differ by
#: more than ``k * (sigma_a + sigma_b)``.
DEFAULT_DIRECTION_K = 2.0

_MODES = ("off", "prior", "serve")


class SurrogateTier:
    """Two-tier answer policy around the electrical engine."""

    def __init__(self, mode: str, *, store=None, stats=None,
                 tech: TechnologyParams | None = None,
                 br_sigma_bound: float = DEFAULT_BR_SIGMA_BOUND,
                 direction_k: float = DEFAULT_DIRECTION_K):
        if mode not in _MODES:
            raise ValueError(f"unknown surrogate mode {mode!r}; choose "
                             f"one of {', '.join(_MODES)}")
        self.mode = mode
        self.journal = CalibrationJournal(store)
        self.predictor = BRPredictor(self.journal, tech=tech)
        self.tech = tech
        self.br_sigma_bound = br_sigma_bound
        self.direction_k = direction_k
        self._stats = stats

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    @property
    def enabled(self) -> bool:
        return self.mode in ("prior", "serve")

    @property
    def serves(self) -> bool:
        return self.mode == "serve"

    def prior_view(self) -> "SurrogateTier":
        """This tier demoted to prior-only (shared journal and stats).

        Used where a serve-mode fallback must run genuinely electrical
        searches — e.g. a direction tie-break the surrogate could not
        separate — while still seeding brackets and journaling results.
        """
        if self.mode != "serve":
            return self
        view = SurrogateTier.__new__(SurrogateTier)
        view.__dict__.update(self.__dict__)
        view.mode = "prior"
        return view

    def stats(self):
        """The engine stats the tier's counters land on."""
        if self._stats is not None:
            return self._stats
        from repro.engine.executor import default_engine
        return default_engine().stats

    @staticmethod
    def backend_of(model) -> str:
        """The simulation backend a model answers for."""
        backend = getattr(model, "backend", None)
        if backend is not None:
            return backend
        from repro.behav.model import BehavioralColumn
        inner = getattr(model, "_inner", None)
        if isinstance(model, BehavioralColumn) \
                or isinstance(inner, BehavioralColumn):
            return "behavioral"
        return "electrical"

    def applies_to(self, model) -> bool:
        """Surrogate the electrical backend only — a behavioral query
        is already as cheap as the tier's own anchor."""
        return self.enabled and self.backend_of(model) == "electrical"

    def _count(self, counter: str, n: int = 1) -> None:
        stats = self.stats()
        setattr(stats, counter, getattr(stats, counter) + n)
        from repro.diagnostics import diagnostics
        diagnostics().record_surrogate_counters({counter: n})

    # ------------------------------------------------------------------
    # border queries
    # ------------------------------------------------------------------
    def predict_br(self, defect: Defect, stress: StressConditions, *,
                   backend: str = "electrical",
                   rel_tol: float = 0.05) -> Prediction:
        with profiler.section("surrogate.predict"):
            return self.predictor.predict(defect, stress,
                                          backend=backend,
                                          rel_tol=rel_tol)

    def br_prior(self, defect: Defect, stress: StressConditions, *,
                 backend: str = "electrical",
                 rel_tol: float = 0.05) -> float | None:
        """A bracket-seeding estimate for the electrical bisection."""
        prediction = self.predict_br(defect, stress, backend=backend,
                                     rel_tol=rel_tol)
        return prediction.resistance

    def serve_br(self, defect: Defect, stress: StressConditions, *,
                 backend: str = "electrical",
                 rel_tol: float = 0.05) -> BorderResult | None:
        """A surrogate-only border, or ``None`` (caller falls back).

        Exact journal matches reproduce the recorded electrical result;
        interpolated answers are served only under the sigma bound, as
        a synthetic :class:`BorderResult`.  Fallbacks are counted here —
        the caller's electrical search is the tier's miss path.
        """
        if not self.serves:
            return None
        with profiler.section("surrogate.serve"):
            prediction = self.predict_br(defect, stress,
                                         backend=backend,
                                         rel_tol=rel_tol)
            if prediction.exact is not None:
                self._count("surrogate_hits")
                return prediction.exact
            if (prediction.log_br is not None
                    and prediction.sigma <= self.br_sigma_bound):
                self._count("surrogate_hits")
                r_lo, r_hi = defect.kind.search_range
                return BorderResult(prediction.resistance,
                                    defect.fails_high,
                                    always_faulty=False,
                                    never_faulty=False,
                                    r_lo=r_lo, r_hi=r_hi)
        self._count("surrogate_fallbacks")
        return None

    def record_br(self, defect: Defect, stress: StressConditions,
                  border: BorderResult, *,
                  backend: str = "electrical",
                  rel_tol: float = 0.05) -> None:
        """Journal a completed electrical search (active learning)."""
        with profiler.section("surrogate.refit"):
            changed = self.journal.record(defect, backend=backend,
                                          tech=self.tech,
                                          rel_tol=rel_tol, stress=stress,
                                          border=border)
        if changed:
            self._count("surrogate_refits")

    # ------------------------------------------------------------------
    # direction queries
    # ------------------------------------------------------------------
    def serve_direction(self, defect: Defect, kind: StressKind,
                        fault_value: int, *,
                        base: StressConditions, r_probe: float,
                        backend: str = "electrical",
                        rel_tol: float = 0.05):
        """A surrogate-only :class:`DirectionCall`, or ``None``.

        The behavioral twin runs the paper's write/read panels (no
        electrical simulation); a flagged BR tie-break is resolved from
        border predictions when their failing-range scores separate by
        more than ``direction_k`` combined sigmas, otherwise the query
        falls back to the electrical flow (which journals the tie-break
        borders it runs — exactly the points that decide this query
        next time).
        """
        if not self.serves:
            return None
        with profiler.section("surrogate.direction"):
            from repro.behav import behavioral_model
            from repro.core.directions import analyze_direction
            model = behavioral_model(defect, stress=base, tech=self.tech)
            model.set_defect_resistance(r_probe)
            call = analyze_direction(model, kind, fault_value, base=base)
            if not call.needs_border_tiebreak:
                self._count("surrogate_hits")
                return call
            scored: list[tuple[float, float, float]] = []
            for value in call.tiebreak_candidates:
                sc = base.with_value(kind, value)
                prediction = self.predict_br(defect, sc, backend=backend,
                                             rel_tol=rel_tol)
                if prediction.log_br is None:
                    scored = []
                    break
                # Larger failing range = better SC: low border for
                # opens, high border for shorts/bridges (in decades).
                score = (-prediction.log_br if defect.fails_high
                         else prediction.log_br)
                scored.append((score, prediction.sigma, value))
            if len(scored) >= 2:
                scored.sort(reverse=True)
                (s0, sig0, v0), (s1, sig1, _) = scored[0], scored[1]
                if s0 - s1 > self.direction_k * (sig0 + sig1):
                    call.chosen_value = v0
                    self._count("surrogate_hits")
                    return call
        self._count("surrogate_fallbacks")
        return None


# ----------------------------------------------------------------------
# process-wide active tier
# ----------------------------------------------------------------------

_ACTIVE: SurrogateTier | None = None


def active_tier() -> SurrogateTier | None:
    """The tier consulted by the analysis layer (``None`` = off)."""
    return _ACTIVE


def set_active_tier(tier: SurrogateTier | None) -> SurrogateTier | None:
    """Install (or clear) the process-wide tier; returns the previous."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = tier
    return previous


def resolve_tier(surrogate) -> SurrogateTier | None:
    """Normalize a caller-facing ``surrogate`` argument.

    ``None`` consults the active tier, ``False``/"off" disables for
    this call, a :class:`SurrogateTier` is used as given.
    """
    if surrogate is None:
        tier = active_tier()
        return tier if tier is not None and tier.enabled else None
    if surrogate is False or surrogate == "off":
        return None
    if isinstance(surrogate, SurrogateTier):
        return surrogate if surrogate.enabled else None
    raise ValueError(f"unknown surrogate policy {surrogate!r}")


def _is_finite(value) -> bool:
    return isinstance(value, (int, float)) and math.isfinite(value)
