"""Packaged seed calibration for the surrogate tier.

The behavioral model predicts how a border *moves* with stress well, but
its absolute border sits off the electrical one by a per-defect bias
(e.g. B1's behavioral border lands ~2x above the electrical one).  The
constants below are those biases — ``log10(BR_electrical) -
log10(BR_behavioral)`` at the nominal stress combination, one per
Table-1 defect — measured once against the default technology by
:func:`calibrate_seed_offsets` and committed, exactly like the packaged
:class:`~repro.behav.model.BehavCalibration` latch constants.

They give a *cold* tier (no calibration points journaled yet) a prior
that usually lands within one bisection leaf of the electrical border.
The guard is the full technology fingerprint: any other technology gets
no seed (the tier then starts from the raw behavioral anchor with a
wide uncertainty, and tightens through the active-learning journal).
"""

from __future__ import annotations

from repro.defects.catalog import ALL_DEFECTS, Defect
from repro.dram.tech import TechnologyParams, default_tech
from repro.engine.request import tech_fingerprint

#: ``tech_fingerprint(default_tech())`` at seed-calibration time.
SEED_TECH_FINGERPRINT = "d634c075abd267bd"

#: Measured nominal log10 border bias per (backend, defect name); a
#: missing entry means the nominal border was degenerate for at least
#: one of the two models, so no bias is defined.
SEED_BR_OFFSETS: dict[tuple[str, str], float] = {
    ("electrical", "O1 (true)"): -0.046875,
    ("electrical", "O1 (comp)"): -0.05859375,
    ("electrical", "O2 (true)"): -0.109375,
    ("electrical", "O2 (comp)"): -0.140625,
    ("electrical", "O3 (true)"): 0.01171875,
    ("electrical", "O3 (comp)"): 0.0,
    ("electrical", "Sg (true)"): 0.01748875490124835,
    ("electrical", "Sg (comp)"): 0.01748875490124835,
    ("electrical", "Sv (true)"): 0.01748875490124835,
    ("electrical", "Sv (comp)"): 0.01748875490124835,
    ("electrical", "B1 (true)"): -0.33228634312372485,
    ("electrical", "B1 (comp)"): -0.3147975882224765,
    ("electrical", "B2 (true)"): -0.052466264703745935,
    ("electrical", "B2 (comp)"): -0.052466264703745935,
}

#: Uncertainty (decades) assigned to a seeded prediction at the
#: calibration point itself; grows with distance from nominal (see
#: :mod:`repro.surrogate.br`).
SEED_SIGMA = 0.05

#: Uncertainty (decades) of an unseeded behavioral anchor.
ANCHOR_SIGMA = 0.35


def seed_offset(defect: Defect, *, backend: str,
                tech: TechnologyParams | None = None) -> float | None:
    """The packaged nominal bias for ``defect``, or ``None``.

    ``None`` when the technology differs from the one the seeds were
    measured on, or when no bias was measurable for this defect.
    """
    if tech_fingerprint(tech or default_tech()) != SEED_TECH_FINGERPRINT:
        return None
    return SEED_BR_OFFSETS.get((backend, defect.name))


def calibrate_seed_offsets(*, backend: str = "electrical",
                           defects=ALL_DEFECTS,
                           rel_tol: float = 0.05) -> dict:
    """Re-measure the seed table (the generator of the constants above).

    Runs the reference (electrical) and behavioral nominal border
    searches per defect and returns ``{"fingerprint": ...,
    "offsets": {(backend, name): bias}}`` — paste-ready.  Expensive
    (one full electrical bisection per defect); not called at runtime.
    """
    import math

    from repro.behav import behavioral_model
    from repro.core.border import find_border_resistance
    from repro.stress import NOMINAL_STRESS

    if backend != "electrical":
        raise ValueError("seed offsets are measured against the "
                         "electrical reference backend")
    from repro.analysis.interface import electrical_model

    offsets: dict[tuple[str, str], float] = {}
    for defect in defects:
        ref = find_border_resistance(
            electrical_model(defect, stress=NOMINAL_STRESS), defect,
            stress=NOMINAL_STRESS, rel_tol=rel_tol, surrogate=False)
        anchor = find_border_resistance(
            behavioral_model(defect, stress=NOMINAL_STRESS), defect,
            stress=NOMINAL_STRESS, rel_tol=rel_tol, surrogate=False)
        if ref.found and anchor.found:
            offsets[(backend, defect.name)] = (
                math.log10(ref.resistance)
                - math.log10(anchor.resistance))
    return {"fingerprint": tech_fingerprint(default_tech()),
            "offsets": offsets}
