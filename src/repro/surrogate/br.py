"""Per-defect border-resistance surrogate with explicit uncertainty.

A prediction is **anchor + residual correction**:

* the *anchor* is the calibrated behavioral model's own border at the
  queried stress combination — the same log-space bisection the
  electrical search runs, on the cheap model (~1% of the electrical
  cost), memoized per (defect, stress, rel_tol);
* the *residual* is the anchor's bias against the electrical truth,
  learned from the calibration journal: every journaled electrical
  border contributes ``log10(BR_elec) - log10(BR_anchor)`` at its
  stress.  Queries interpolate the residual field — a monotone PCHIP
  when the journal varies along a single ST axis, inverse-distance
  weighting in the range-normalized 4-D ST space otherwise — seeded by
  the packaged nominal bias (:mod:`repro.surrogate.seeds`) when the
  journal is empty.

Every prediction carries ``sigma``, an uncertainty in **decades of
resistance**: the leave-one-out residual of the interpolant (how badly
the journal predicts its own points) inflated with the normalized ST
distance to the nearest calibration point.  An exact stress match
reproduces the journaled electrical result itself with ``sigma = 0`` —
the serve tier's resume path.

ST coordinates are normalized by the specification ranges
(:data:`~repro.stress.STRESS_RANGES`) and **clamped** to them:
outside-spec queries reuse the nearest in-range behavior rather than
extrapolate, and their distance penalty keeps the uncertainty honest.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.analysis.border import BorderResult, border_resistance
from repro.defects.catalog import Defect
from repro.dram.tech import TechnologyParams
from repro.stress import NOMINAL_STRESS, STRESS_RANGES, StressConditions
from repro.surrogate import seeds
from repro.surrogate.interp import Pchip1D, loo_residuals, rms
from repro.surrogate.store import CalibrationJournal, CalPoint

#: Floor of any interpolated sigma (decades) — the journal can never
#: talk itself into perfect confidence off its own points.
SIGMA_FLOOR = 0.01

#: How fast sigma grows with normalized ST distance from the nearest
#: calibration evidence (decades per unit distance; the full Vdd range
#: is distance 1.0).
DISTANCE_SIGMA = 0.25


def normalized(stress: StressConditions) -> tuple[float, ...]:
    """Range-normalized (and clamped) ST coordinates of one SC."""
    coords = []
    for kind, rng in STRESS_RANGES.items():
        u = (stress.value_of(kind) - rng.low) / (rng.high - rng.low)
        coords.append(min(max(u, 0.0), 1.0))
    return tuple(coords)


def _distance(a: tuple[float, ...], b: tuple[float, ...]) -> float:
    return math.sqrt(sum((x - y) ** 2 for x, y in zip(a, b)))


@dataclass(frozen=True)
class Prediction:
    """One surrogate answer: a border estimate and how much to trust it.

    ``log_br`` is ``None`` when no estimate exists (degenerate anchor
    with an empty journal).  ``exact`` carries the reconstructed
    electrical result when the query's stress matches a journaled point
    — serving it is a cache hit in all but name.  ``n_points`` is the
    journal evidence behind the estimate; ``source`` names the path
    ("exact", "interp", "seed", "anchor").
    """

    log_br: float | None
    sigma: float
    n_points: int = 0
    source: str = "anchor"
    exact: BorderResult | None = None

    @property
    def resistance(self) -> float | None:
        return 10.0 ** self.log_br if self.log_br is not None else None


class BRPredictor:
    """Anchor + residual-field border surrogate for one journal."""

    def __init__(self, journal: CalibrationJournal, *,
                 tech: TechnologyParams | None = None):
        self.journal = journal
        self.tech = tech
        self._anchors: dict[tuple, BorderResult] = {}

    # ------------------------------------------------------------------
    # behavioral anchor
    # ------------------------------------------------------------------
    def anchor(self, defect: Defect, stress: StressConditions,
               rel_tol: float) -> BorderResult:
        """The behavioral model's border at ``stress`` (memoized)."""
        key = (defect.kind, defect.placement, stress, rel_tol)
        cached = self._anchors.get(key)
        if cached is not None:
            return cached
        from repro.behav import behavioral_model
        model = behavioral_model(defect, stress=stress, tech=self.tech)
        r_lo, r_hi = defect.kind.search_range
        result = border_resistance(model, fails_high=defect.fails_high,
                                   r_lo=r_lo, r_hi=r_hi, rel_tol=rel_tol)
        self._anchors[key] = result
        return result

    def _anchor_log(self, defect: Defect, stress: StressConditions,
                    rel_tol: float) -> float | None:
        result = self.anchor(defect, stress, rel_tol)
        return math.log10(result.resistance) if result.found else None

    # ------------------------------------------------------------------
    # prediction
    # ------------------------------------------------------------------
    def predict(self, defect: Defect, stress: StressConditions, *,
                backend: str, rel_tol: float) -> Prediction:
        """Predict ``defect``'s border under ``stress`` with sigma."""
        points = self.journal.points(defect, backend=backend,
                                     tech=self.tech, rel_tol=rel_tol)
        for point in points:
            if point.stress == stress:
                r_lo, r_hi = defect.kind.search_range
                log_br = (math.log10(point.resistance)
                          if point.found else None)
                return Prediction(
                    log_br, 0.0, n_points=len(points), source="exact",
                    exact=point.border(defect.fails_high, r_lo, r_hi))

        anchor_log = self._anchor_log(defect, stress, rel_tol)
        if anchor_log is None:
            return self._anchorless(defect, stress, points)

        usable: list[tuple[CalPoint, float]] = []   # (point, residual)
        for point in points:
            if not point.found:
                continue
            pa = self._anchor_log(defect, point.stress, rel_tol)
            if pa is None:
                continue
            usable.append((point, math.log10(point.resistance) - pa))
        if not usable:
            return self._seeded(defect, stress, anchor_log,
                                backend=backend)

        query = normalized(stress)
        coords = [normalized(p.stress) for p, _ in usable]
        residuals = [r for _, r in usable]
        d_min = min(_distance(query, c) for c in coords)
        axis = self._single_axis(query, coords)
        if axis is not None and len(usable) >= 2:
            resid_hat, base = self._interp_axis(axis, query, coords,
                                                residuals)
        else:
            resid_hat, base = self._idw(query, coords, residuals)
        sigma = max(base, SIGMA_FLOOR) + DISTANCE_SIGMA * min(d_min, 2.0)
        return Prediction(anchor_log + resid_hat, sigma,
                          n_points=len(usable), source="interp")

    # ------------------------------------------------------------------
    # prediction paths
    # ------------------------------------------------------------------
    def _seeded(self, defect: Defect, stress: StressConditions,
                anchor_log: float, *, backend: str) -> Prediction:
        """Empty journal: packaged seed bias (or the bare anchor)."""
        offset = seeds.seed_offset(defect, backend=backend,
                                   tech=self.tech)
        d_nom = _distance(normalized(stress), normalized(NOMINAL_STRESS))
        if offset is None:
            sigma = seeds.ANCHOR_SIGMA + DISTANCE_SIGMA * min(d_nom, 2.0)
            return Prediction(anchor_log, sigma, source="anchor")
        sigma = seeds.SEED_SIGMA + DISTANCE_SIGMA * min(d_nom, 2.0)
        return Prediction(anchor_log + offset, sigma, source="seed")

    def _anchorless(self, defect: Defect, stress: StressConditions,
                    points: list[CalPoint]) -> Prediction:
        """Degenerate anchor: fall back to the raw journal field."""
        usable = [(p, math.log10(p.resistance)) for p in points
                  if p.found]
        if not usable:
            return Prediction(None, math.inf, source="anchor")
        query = normalized(stress)
        coords = [normalized(p.stress) for p, _ in usable]
        values = [v for _, v in usable]
        d_min = min(_distance(query, c) for c in coords)
        value_hat, base = self._idw(query, coords, values)
        # No anchor means no stress-response model at all — double the
        # distance penalty so only a dense journal serves here.
        sigma = (max(base, SIGMA_FLOOR)
                 + 2.0 * DISTANCE_SIGMA * min(d_min, 2.0))
        return Prediction(value_hat, sigma, n_points=len(usable),
                          source="interp")

    @staticmethod
    def _single_axis(query: tuple[float, ...],
                     coords: list[tuple[float, ...]]) -> int | None:
        """The one axis everything varies along, if there is one."""
        varying = set()
        for c in coords:
            for i, (a, b) in enumerate(zip(c, query)):
                if abs(a - b) > 1e-12:
                    varying.add(i)
        if len(varying) == 1:
            return varying.pop()
        return None

    @staticmethod
    def _interp_axis(axis: int, query: tuple[float, ...],
                     coords: list[tuple[float, ...]],
                     residuals: list[float]) -> tuple[float, float]:
        """Monotone 1-D interpolation along the single varying axis."""
        by_x: dict[float, float] = {}
        for c, r in zip(coords, residuals):
            by_x[c[axis]] = r          # later points replace duplicates
        xs = sorted(by_x)
        ys = [by_x[x] for x in xs]
        if len(xs) == 1:
            return ys[0], 0.0
        fit = Pchip1D(xs, ys)
        return fit(query[axis]), rms(loo_residuals(xs, ys))

    @staticmethod
    def _idw(query: tuple[float, ...], coords: list[tuple[float, ...]],
             values: list[float]) -> tuple[float, float]:
        """Inverse-distance weighting with a weighted-spread sigma."""
        weights = [1.0 / (_distance(query, c) + 1e-6) for c in coords]
        total = sum(weights)
        mean = sum(w * v for w, v in zip(weights, values)) / total
        spread = math.sqrt(sum(w * (v - mean) ** 2
                               for w, v in zip(weights, values)) / total)
        return mean, spread
