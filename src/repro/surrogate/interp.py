"""Monotone 1-D interpolation with leave-one-out uncertainty.

The surrogate tier predicts per-defect border resistances on log-R over
the ST axes.  Where calibration points vary along a single axis the
prediction interpolates with a **shape-preserving piecewise cubic**
(PCHIP, Fritsch–Carlson slopes): monotone data produces a monotone
interpolant, so a border that moves monotonically with an ST — the
paper's central assumption — never grows spurious wiggles between
calibration points.  Everything is pure python/math: the tier must work
on the scipy-free tier-1 configuration.

Extrapolation is **clamped**: queries outside the fitted x-range return
the boundary value instead of extending the end cubic — a surrogate
should admit it knows nothing beyond its data, and the uncertainty
model (:func:`loo_residuals`) widens there separately.
"""

from __future__ import annotations

from typing import Sequence


class Pchip1D:
    """Shape-preserving cubic through ``(xs, ys)`` with clamped ends.

    ``xs`` must be strictly increasing.  One point degenerates to a
    constant, two to the linear interpolant (both still clamped outside
    the range).  Construction is O(n); evaluation O(log n).
    """

    def __init__(self, xs: Sequence[float], ys: Sequence[float]):
        xs = [float(x) for x in xs]
        ys = [float(y) for y in ys]
        if len(xs) != len(ys):
            raise ValueError("xs and ys must have equal length")
        if not xs:
            raise ValueError("need at least one point")
        for a, b in zip(xs, xs[1:]):
            if b <= a:
                raise ValueError("xs must be strictly increasing")
        self.xs = xs
        self.ys = ys
        self._slopes = _pchip_slopes(xs, ys)

    def __call__(self, x: float) -> float:
        xs, ys = self.xs, self.ys
        if x <= xs[0]:
            return ys[0]            # clamped extrapolation
        if x >= xs[-1]:
            return ys[-1]
        # binary search for the containing interval
        lo, hi = 0, len(xs) - 1
        while hi - lo > 1:
            mid = (lo + hi) // 2
            if xs[mid] <= x:
                lo = mid
            else:
                hi = mid
        h = xs[hi] - xs[lo]
        t = (x - xs[lo]) / h
        d0, d1 = self._slopes[lo], self._slopes[hi]
        y0, y1 = ys[lo], ys[hi]
        # cubic Hermite basis
        t2 = t * t
        t3 = t2 * t
        return (y0 * (2 * t3 - 3 * t2 + 1) + h * d0 * (t3 - 2 * t2 + t)
                + y1 * (-2 * t3 + 3 * t2) + h * d1 * (t3 - t2))


def _pchip_slopes(xs: list[float], ys: list[float]) -> list[float]:
    """Fritsch–Carlson endpoint-limited monotone slopes."""
    n = len(xs)
    if n == 1:
        return [0.0]
    h = [xs[i + 1] - xs[i] for i in range(n - 1)]
    delta = [(ys[i + 1] - ys[i]) / h[i] for i in range(n - 1)]
    if n == 2:
        return [delta[0], delta[0]]
    d = [0.0] * n
    for i in range(1, n - 1):
        if delta[i - 1] * delta[i] <= 0.0:
            d[i] = 0.0
        else:
            w1 = 2 * h[i] + h[i - 1]
            w2 = h[i] + 2 * h[i - 1]
            d[i] = (w1 + w2) / (w1 / delta[i - 1] + w2 / delta[i])
    d[0] = _edge_slope(h[0], h[1], delta[0], delta[1])
    d[-1] = _edge_slope(h[-1], h[-2], delta[-1], delta[-2])
    return d


def _edge_slope(h0: float, h1: float, d0: float, d1: float) -> float:
    """One-sided three-point endpoint slope, limited for monotonicity."""
    d = ((2 * h0 + h1) * d0 - h0 * d1) / (h0 + h1)
    if d * d0 <= 0.0:
        return 0.0
    if d0 * d1 < 0.0 and abs(d) > 3 * abs(d0):
        return 3 * d0
    return d


def loo_residuals(xs: Sequence[float], ys: Sequence[float]) -> list[float]:
    """Leave-one-out residual per point: ``fit-without-i(x_i) - y_i``.

    The classic interpolator self-assessment: refit without each point
    and measure how badly the rest predicts it.  With fewer than three
    points there is nothing meaningful to leave out — the residual is
    the spread of the data (0 for a single point), which keeps the
    uncertainty honest instead of optimistically zero.
    """
    xs = [float(x) for x in xs]
    ys = [float(y) for y in ys]
    n = len(xs)
    if n == 0:
        raise ValueError("need at least one point")
    if n == 1:
        return [0.0]
    if n == 2:
        spread = abs(ys[1] - ys[0])
        return [spread, spread]
    out = []
    for i in range(n):
        fit = Pchip1D(xs[:i] + xs[i + 1:], ys[:i] + ys[i + 1:])
        out.append(fit(xs[i]) - ys[i])
    return out


def rms(values: Sequence[float]) -> float:
    """Root-mean-square of ``values`` (0.0 when empty)."""
    values = list(values)
    if not values:
        return 0.0
    return (sum(v * v for v in values) / len(values)) ** 0.5
