"""Surrogate-first answer tier for border and direction queries.

Two tiers: calibrated per-defect surrogates answer first
(:mod:`repro.surrogate.br`), the lane-batched electrical engine is the
uncertainty-gated fallback, and every fallback result is journaled as a
calibration point (:mod:`repro.surrogate.store`) — an active-learning
loop that tightens the surrogate over a campaign.  See
:mod:`repro.surrogate.tier` for the serving policy and
``docs/methodology.md`` §7i for the methodology.
"""

from repro.surrogate.br import BRPredictor, Prediction
from repro.surrogate.store import CalibrationJournal, CalPoint
from repro.surrogate.tier import (
    SurrogateTier,
    active_tier,
    resolve_tier,
    set_active_tier,
)

__all__ = [
    "BRPredictor",
    "CalPoint",
    "CalibrationJournal",
    "Prediction",
    "SurrogateTier",
    "active_tier",
    "resolve_tier",
    "set_active_tier",
]
