"""Run diagnostics: structured logging plus failure/rescue/retry accounting.

The resilience layer spans three tiers — the SPICE solvers (convergence
rescue), the execution engine (fault-isolated batches) and the analysis
sweeps (degraded results with holes).  All three report what happened
through this module so one run produces one coherent story:

* :func:`get_logger` / :func:`configure_logging` — a single stdlib
  ``logging`` tree rooted at ``"repro"``, writing structured one-line
  records to stderr.  Nothing is emitted until :func:`configure_logging`
  installs the handler (library use stays silent by default).
* :class:`RunDiagnostics` — per-run counters of failures, rescues,
  retries, timeouts and worker crashes, with a human-readable summary.
  The process-wide instance (:func:`diagnostics`) is what the CLI prints
  to stderr after a sweep; :func:`reset_diagnostics` starts a fresh run.

Counters recorded inside worker processes stay in those processes; the
parent learns about worker-side problems through the structured
:class:`~repro.engine.failures.FailedResult` records the executor hands
back, which it folds into the parent's diagnostics.
"""

from __future__ import annotations

import logging
import sys
from dataclasses import dataclass, field

#: Root logger name of the package; every tier logs under a child.
LOGGER_NAME = "repro"

#: One-line structured record: time, severity, subsystem, message.
LOG_FORMAT = "%(asctime)s %(levelname)-8s %(name)s | %(message)s"

#: Levels accepted by :func:`configure_logging` and the CLI flag.
LOG_LEVELS = ("debug", "info", "warning", "error", "critical")


def get_logger(name: str | None = None) -> logging.Logger:
    """A logger under the package root (``repro`` or ``repro.<name>``)."""
    if not name:
        return logging.getLogger(LOGGER_NAME)
    return logging.getLogger(f"{LOGGER_NAME}.{name}")


def configure_logging(level: str | int = "warning",
                      stream=None) -> logging.Logger:
    """Install (or retune) the package's stderr handler.

    Idempotent: repeated calls adjust the level of the existing handler
    instead of stacking duplicates, so tests and nested CLI invocations
    never multiply output lines.
    """
    if isinstance(level, str):
        if level.lower() not in LOG_LEVELS:
            raise ValueError(f"unknown log level {level!r}; choose one of "
                             f"{', '.join(LOG_LEVELS)}")
        level = getattr(logging, level.upper())
    logger = logging.getLogger(LOGGER_NAME)
    logger.setLevel(level)
    logger.propagate = False
    for handler in logger.handlers:
        if getattr(handler, "_repro_handler", False):
            handler.setLevel(level)
            if stream is not None:
                try:
                    handler.setStream(stream)
                except ValueError:
                    # The previous stream is already closed (common when
                    # a test harness swapped stderr): skip its flush and
                    # retarget directly.
                    handler.stream = stream
            return logger
    handler = logging.StreamHandler(stream if stream is not None
                                    else sys.stderr)
    handler.setLevel(level)
    handler.setFormatter(logging.Formatter(LOG_FORMAT))
    handler._repro_handler = True
    logger.addHandler(handler)
    return logger


@dataclass
class RunDiagnostics:
    """Failure/rescue/retry accounting of one run.

    ``failures`` counts units of work that produced no result (after all
    rescue and retry machinery gave up); ``rescues`` counts solves that
    only succeeded through a fallback ladder; ``retries`` counts batch
    items re-driven after a worker crash; ``timeouts`` and
    ``worker_crashes`` break the failure causes down; ``cache_evictions``
    counts corrupted on-disk cache entries deleted on read.
    """

    failures: int = 0
    rescues: int = 0
    retries: int = 0
    timeouts: int = 0
    worker_crashes: int = 0
    cache_evictions: int = 0
    cache_quarantined: int = 0
    cache_tmp_reclaimed: int = 0
    journal_recovered: int = 0
    journal_holes: int = 0
    journal_missing: int = 0
    failure_kinds: dict[str, int] = field(default_factory=dict)
    rescue_stages: dict[str, int] = field(default_factory=dict)
    solver_kernels: dict[str, int] = field(default_factory=dict)
    lane_counters: dict[str, int] = field(default_factory=dict)
    trim_counters: dict[str, int] = field(default_factory=dict)
    surrogate_counters: dict[str, int] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def record_failure(self, error_type: str, detail: str = "") -> None:
        """One unit of work lost for good (logged at WARNING)."""
        self.failures += 1
        self.failure_kinds[error_type] = \
            self.failure_kinds.get(error_type, 0) + 1
        if error_type == "TimeoutError":
            self.timeouts += 1
        get_logger("diagnostics").warning(
            "failure (%s)%s", error_type, f": {detail}" if detail else "")

    def record_rescue(self, stage: str) -> None:
        """One solve saved by a fallback (``gmin``, ``source``...)."""
        self.rescues += 1
        self.rescue_stages[stage] = self.rescue_stages.get(stage, 0) + 1
        get_logger("diagnostics").info("convergence rescue via %s", stage)

    def record_kernel_counters(self, counters: dict[str, int]) -> None:
        """Fold solver-kernel counters (stamp plans, factorization cache,
        modified-Newton refactors) into the run totals.  Informational:
        kernel activity never makes a run ``eventful``.
        """
        for name, n in counters.items():
            self.solver_kernels[name] = self.solver_kernels.get(name, 0) + n

    def record_lane_counters(self, counters: dict[str, int]) -> None:
        """Fold batched-lane kernel counters (lanes launched, converged,
        isolated, continuation warm-start hits) into the run totals.
        Informational, like the solver-kernel counters — lane activity
        never makes a run ``eventful``.
        """
        for name, n in counters.items():
            self.lane_counters[name] = self.lane_counters.get(name, 0) + n

    def record_trim_counters(self, counters: dict[str, int]) -> None:
        """Fold netlist-trimming counters (windows applied/bypassed,
        cells and nodes pruned) into the run totals.  Informational,
        like the solver-kernel counters — trimming activity never makes
        a run ``eventful``.
        """
        for name, n in counters.items():
            self.trim_counters[name] = self.trim_counters.get(name, 0) + n

    def record_surrogate_counters(self, counters: dict[str, int]) -> None:
        """Fold surrogate-tier counters (queries served, electrical
        fallbacks, calibration refits) into the run totals.
        Informational, like the solver-kernel counters — surrogate
        activity never makes a run ``eventful``.
        """
        for name, n in counters.items():
            self.surrogate_counters[name] = \
                self.surrogate_counters.get(name, 0) + n

    def record_retry(self, count: int = 1) -> None:
        """Batch items re-driven after an infrastructure fault."""
        self.retries += count

    def record_worker_crash(self) -> None:
        """One pool breakage (``BrokenProcessPool``)."""
        self.worker_crashes += 1
        get_logger("diagnostics").warning(
            "worker process crashed; respawning pool")

    def record_cache_eviction(self, path: str = "") -> None:
        """One corrupted on-disk cache entry deleted."""
        self.cache_evictions += 1
        get_logger("diagnostics").warning(
            "evicted corrupted cache entry%s",
            f" {path}" if path else "")

    def record_cache_quarantine(self, path: str = "",
                                reason: str = "") -> None:
        """One store entry that failed integrity verification and was
        moved into the store's ``corrupt/`` directory."""
        self.cache_quarantined += 1
        get_logger("diagnostics").warning(
            "quarantined store entry%s%s",
            f" {path}" if path else "",
            f" ({reason})" if reason else "")

    def record_tmp_reclaimed(self, count: int = 1) -> None:
        """Orphaned ``*.tmp`` files swept at store construction —
        leftovers of a crash mid-write."""
        self.cache_tmp_reclaimed += count
        get_logger("diagnostics").info(
            "reclaimed %d orphaned cache temp file(s)", count)

    def record_journal_recovery(self, count: int = 1) -> None:
        """Completed work skipped on resume (journaled + in the store)."""
        self.journal_recovered += count

    def record_journal_hole(self, detail: str = "") -> None:
        """One journaled failure replayed as a hole instead of re-run."""
        self.journal_holes += 1
        get_logger("diagnostics").info(
            "journal-recovered hole%s", f": {detail}" if detail else "")

    def record_journal_missing(self, key: str = "") -> None:
        """One journaled-complete result missing from the store (lost or
        quarantined entry) — re-simulated instead of recovered."""
        self.journal_missing += 1
        get_logger("diagnostics").warning(
            "journaled result missing from store%s; re-running",
            f" ({key[:12]}…)" if key else "")

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    @property
    def eventful(self) -> bool:
        """Did anything noteworthy happen this run?"""
        return bool(self.failures or self.rescues or self.retries
                    or self.worker_crashes or self.cache_evictions
                    or self.cache_quarantined or self.cache_tmp_reclaimed
                    or self.journal_recovered or self.journal_holes
                    or self.journal_missing)

    def summary(self) -> str:
        """Multi-line per-run summary (the CLI prints this to stderr)."""
        lines = [f"resilience: {self.failures} failed, "
                 f"{self.rescues} rescued, {self.retries} retried"]
        if self.failure_kinds:
            kinds = ", ".join(f"{k} x{n}" for k, n in
                              sorted(self.failure_kinds.items()))
            lines.append(f"  failures by kind: {kinds}")
        if self.rescue_stages:
            stages = ", ".join(f"{k} x{n}" for k, n in
                               sorted(self.rescue_stages.items()))
            lines.append(f"  rescues by stage: {stages}")
        if self.timeouts:
            lines.append(f"  timeouts: {self.timeouts}")
        if self.worker_crashes:
            lines.append(f"  worker crashes: {self.worker_crashes}")
        if self.cache_evictions:
            lines.append(f"  corrupted cache entries evicted: "
                         f"{self.cache_evictions}")
        if self.cache_quarantined:
            lines.append(f"  store entries quarantined: "
                         f"{self.cache_quarantined}")
        if self.cache_tmp_reclaimed:
            lines.append(f"  orphaned cache temp files reclaimed: "
                         f"{self.cache_tmp_reclaimed}")
        if self.journal_recovered or self.journal_holes \
                or self.journal_missing:
            lines.append(f"  journal: {self.journal_recovered} results "
                         f"recovered, {self.journal_holes} holes "
                         f"replayed, {self.journal_missing} missing "
                         f"from store")
        if self.solver_kernels:
            kernels = ", ".join(f"{k} x{n}" for k, n in
                                sorted(self.solver_kernels.items()))
            lines.append(f"  solver kernels: {kernels}")
        if self.lane_counters:
            lanes = ", ".join(f"{k} x{n}" for k, n in
                              sorted(self.lane_counters.items()))
            lines.append(f"  lane kernel: {lanes}")
        if self.trim_counters:
            trims = ", ".join(f"{k} x{n}" for k, n in
                              sorted(self.trim_counters.items()))
            lines.append(f"  netlist trim: {trims}")
        if self.surrogate_counters:
            surr = ", ".join(f"{k} x{n}" for k, n in
                             sorted(self.surrogate_counters.items()))
            lines.append(f"  surrogate tier: {surr}")
        return "\n".join(lines)

    def report(self, stream=None) -> None:
        """Print the summary to ``stream`` (stderr) when eventful."""
        if self.eventful:
            print(self.summary(), file=stream if stream is not None
                  else sys.stderr)


_DIAGNOSTICS = RunDiagnostics()


def diagnostics() -> RunDiagnostics:
    """The process-wide diagnostics of the current run."""
    return _DIAGNOSTICS


def reset_diagnostics() -> RunDiagnostics:
    """Start a fresh run (returns the new instance)."""
    global _DIAGNOSTICS
    _DIAGNOSTICS = RunDiagnostics()
    return _DIAGNOSTICS
