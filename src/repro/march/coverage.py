"""Fault coverage of march tests over a defect-resistance grid.

The testing meaning of the paper's Table 1: an optimized stress
combination enlarges the failing resistance range, so a given march test
detects *more* of the defect population.  Coverage here is measured over
a log grid of defect resistances: the fraction of grid points at which
the test detects the defect.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.analysis.interface import ColumnModel
from repro.stress import StressConditions
from repro.defects.catalog import Defect
from repro.engine import parallel_map
from repro.march.notation import MarchTest
from repro.march.runner import run_march


@dataclass
class CoverageReport:
    """Detection outcomes of one march test over a resistance grid."""

    test: MarchTest
    defect: Defect
    stress: StressConditions
    resistances: list[float]
    detected: list[bool] = field(default_factory=list)

    @property
    def coverage(self) -> float:
        """Detected fraction of the probed resistance grid."""
        if not self.detected:
            return 0.0
        return sum(self.detected) / len(self.detected)

    def detected_range(self) -> tuple[float, float] | None:
        """Smallest and largest detected resistance (None if nothing)."""
        hits = [r for r, d in zip(self.resistances, self.detected) if d]
        if not hits:
            return None
        return (min(hits), max(hits))

    def describe(self) -> str:
        rng = self.detected_range()
        extra = "" if rng is None else \
            f", detects R in [{rng[0]:.3g}, {rng[1]:.3g}]"
        return (f"{self.test.name} on {self.defect.name} @ "
                f"{self.stress.describe()}: coverage "
                f"{self.coverage:.0%}{extra}")


def _coverage_task(args) -> bool:
    """Detection at one resistance (module-level: picklable)."""
    test, model_factory, defect, stress, r, n_cells, address = args
    model = model_factory(defect.with_resistance(r), stress)
    return run_march(test, model, n_cells=n_cells,
                     defective_address=address).detected


def fault_coverage(test: MarchTest,
                   model_factory: Callable[[Defect, StressConditions],
                                           ColumnModel],
                   defect: Defect, stress: StressConditions, *,
                   resistances: Sequence[float],
                   n_cells: int = 4,
                   defective_address: int = 1,
                   workers: int = 1) -> CoverageReport:
    """Run ``test`` at each resistance and record detection.

    March runs are state-chained (one long operation stream per device),
    so the engine cannot memoize inside a run; ``workers > 1`` instead
    fans the independent per-resistance runs out over a process pool.
    """
    report = CoverageReport(test, defect, stress, list(resistances))
    if workers <= 1:
        for r in resistances:
            model = model_factory(defect.with_resistance(r), stress)
            outcome = run_march(test, model, n_cells=n_cells,
                                defective_address=defective_address)
            report.detected.append(outcome.detected)
        return report
    tasks = [(test, model_factory, defect, stress, r, n_cells,
              defective_address) for r in resistances]
    report.detected.extend(parallel_map(_coverage_task, tasks,
                                        workers=workers))
    return report
