"""March test notation.

A march test is a sequence of *march elements*; each element pairs an
address order with a list of operations applied completely at one address
before moving to the next:

* ``⇑`` — ascending address order,
* ``⇓`` — descending,
* ``⇕`` — either (implemented as ascending).

Text syntax accepted by :func:`parse_march` uses ``u``/``d``/``b`` (or the
arrows): ``"u(w0); u(r0,w1); d(r1,w0,r0)"``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.dram.ops import Op


class AddressOrder(enum.Enum):
    UP = "⇑"
    DOWN = "⇓"
    ANY = "⇕"

    @classmethod
    def parse(cls, token: str) -> "AddressOrder":
        token = token.strip()
        aliases = {"u": cls.UP, "up": cls.UP, "⇑": cls.UP,
                   "d": cls.DOWN, "down": cls.DOWN, "⇓": cls.DOWN,
                   "b": cls.ANY, "any": cls.ANY, "⇕": cls.ANY}
        try:
            return aliases[token.lower()]
        except KeyError:
            raise ValueError(f"unknown address order {token!r}") from None

    def addresses(self, n: int) -> range:
        if self is AddressOrder.DOWN:
            return range(n - 1, -1, -1)
        return range(n)


@dataclass(frozen=True)
class MarchElement:
    """One march element: an address order plus per-address operations."""

    order: AddressOrder
    ops: tuple[Op, ...]

    def __post_init__(self):
        if not self.ops:
            raise ValueError("march element needs at least one operation")

    @classmethod
    def parse(cls, text: str) -> "MarchElement":
        text = text.strip()
        open_idx = text.find("(")
        if open_idx < 0 or not text.endswith(")"):
            raise ValueError(f"malformed march element {text!r}")
        order = AddressOrder.parse(text[:open_idx])
        body = text[open_idx + 1:-1]
        ops = tuple(Op.parse(tok) for tok in body.replace(",", " ").split())
        return cls(order, ops)

    def __str__(self):
        return f"{self.order.value}({','.join(str(o) for o in self.ops)})"


@dataclass(frozen=True)
class MarchTest:
    """A named march test."""

    name: str
    elements: tuple[MarchElement, ...]

    def __post_init__(self):
        if not self.elements:
            raise ValueError("march test needs at least one element")

    @property
    def length(self) -> int:
        """Operations per cell (the conventional ``xN`` complexity)."""
        return sum(len(e.ops) for e in self.elements)

    def notation(self) -> str:
        return "; ".join(str(e) for e in self.elements)

    def __str__(self):
        return f"{self.name}: {self.notation()} ({self.length}N)"


def parse_march(name: str, text: str) -> MarchTest:
    """Parse ``"u(w0); u(r0,w1); d(r1,w0)"`` into a :class:`MarchTest`."""
    elements = tuple(MarchElement.parse(part)
                     for part in text.split(";") if part.strip())
    return MarchTest(name, elements)
