"""Delay (pause) elements for march tests.

Retention-flavoured defects escape plain march tests when the idle time
between the write and the verifying read is too short.  Production tests
insert pauses; in march notation that is an element of ``nop``
operations.  :func:`with_delay` upgrades any march test by inserting a
pause before every element that *begins with a read* — the verifying
reads then see an aged cell.
"""

from __future__ import annotations

from repro.dram.ops import Op, Operation
from repro.march.notation import AddressOrder, MarchElement, MarchTest


def delay_element(cycles: int) -> MarchElement:
    """A pure pause: ``cycles`` idle operations per address."""
    if cycles < 1:
        raise ValueError("delay must be at least one cycle")
    return MarchElement(AddressOrder.ANY, (Op(Operation.NOP),) * cycles)


def with_delay(test: MarchTest, cycles: int, *,
               suffix: str = " +delay") -> MarchTest:
    """Insert a pause before every read-leading element of ``test``."""
    pause = delay_element(cycles)
    elements: list[MarchElement] = []
    for element in test.elements:
        first = element.ops[0]
        if first.operation is Operation.R:
            elements.append(pause)
        elements.append(element)
    return MarchTest(test.name + suffix, tuple(elements))
