"""March tests: notation, standard library, runner and coverage.

March tests are the industrial test algorithms whose fault coverage the
paper's stress optimization improves.  This package provides:

* :mod:`repro.march.notation` — the march DSL
  (``⇑(w0); ⇑(r0,w1); ⇓(r1,w0)``),
* :mod:`repro.march.library` — MATS+, March C−, March X/Y, March A/B,
  PMOVI,
* :mod:`repro.march.runner` — functional execution against a memory with
  one electrically-modelled defective cell,
* :mod:`repro.march.coverage` — fault coverage over a defect-resistance
  grid, used to compare nominal vs optimized stress combinations.
"""

from repro.march.notation import AddressOrder, MarchElement, MarchTest, parse_march
from repro.march.library import (
    MARCH_A,
    MARCH_B,
    MARCH_CMINUS,
    MARCH_X,
    MARCH_Y,
    MATS,
    MATS_PLUS,
    MATS_PP,
    PMOVI,
    STANDARD_TESTS,
)
from repro.march.runner import MarchResult, run_march
from repro.march.coverage import CoverageReport, fault_coverage
from repro.march.delays import delay_element, with_delay
from repro.march.synthesis import march_from_conditions, synthesize_for_defects

__all__ = [
    "AddressOrder",
    "CoverageReport",
    "MARCH_A",
    "MARCH_B",
    "MARCH_CMINUS",
    "MARCH_X",
    "MARCH_Y",
    "MATS",
    "MATS_PLUS",
    "MATS_PP",
    "MarchElement",
    "MarchResult",
    "MarchTest",
    "PMOVI",
    "STANDARD_TESTS",
    "delay_element",
    "fault_coverage",
    "march_from_conditions",
    "parse_march",
    "run_march",
    "synthesize_for_defects",
    "with_delay",
]
