"""Functional march-test execution against a defective memory.

The memory under test has ``n_cells`` addresses; one address holds the
electrically-modelled defective cell (any :class:`ColumnModel`), the rest
behave ideally.  Operations addressed at healthy cells return the
expected value by construction but still *advance time* for the defective
cell — each is applied to the model as a ``nop`` cycle, so decay-driven
faults (shorts, bridges, leakage) see realistic idle periods between
visits.  This is the detail that makes long tests genuinely stronger
against retention-flavoured defects.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.interface import ColumnModel, stored_level
from repro.dram.ops import Op, Operation
from repro.march.notation import MarchTest


@dataclass
class MarchFailure:
    """One observed mismatch during the march."""

    element_index: int
    address: int
    op_index: int
    expected: int
    observed: int


@dataclass
class MarchResult:
    """Outcome of one march execution."""

    test: MarchTest
    n_cells: int
    defective_address: int
    failures: list[MarchFailure] = field(default_factory=list)
    total_ops: int = 0

    @property
    def detected(self) -> bool:
        return bool(self.failures)

    def describe(self) -> str:
        verdict = "DETECTED" if self.detected else "passed"
        extra = ""
        if self.failures:
            f = self.failures[0]
            extra = (f" (first at element {f.element_index}, address "
                     f"{f.address}: read {f.observed}, expected "
                     f"{f.expected})")
        return f"{self.test.name}: {verdict}{extra}"


def run_march(test: MarchTest, model: ColumnModel, *, n_cells: int = 8,
              defective_address: int = 3,
              initial_value: int | None = None,
              stop_at_first: bool = True) -> MarchResult:
    """March ``test`` over a memory whose one defective cell is ``model``.

    ``initial_value`` forces the defective cell's pre-test logical value
    (``None`` = mid-rail unknown state).  Healthy cells are ideal, so only
    the defective address can produce failures; every healthy-address
    operation becomes a ``nop`` cycle for the model.
    """
    if not 0 <= defective_address < n_cells:
        raise ValueError("defective_address out of range")
    result = MarchResult(test, n_cells, defective_address)
    nop = Op(Operation.NOP)

    if initial_value is None:
        init_vc = 0.5 * model.stress.vdd
    else:
        init_vc = stored_level(model, initial_value)
    state = model.idle_state(init_vc)

    # The march's *expected* value for the defective address, tracked from
    # the test structure itself.
    expected: int | None = initial_value

    for ei, element in enumerate(test.elements):
        for address in element.order.addresses(n_cells):
            at_target = address == defective_address
            for oi, op in enumerate(element.ops):
                result.total_ops += 1
                if not at_target:
                    _, state = model.run_op(nop, state)
                    continue
                opres, state = model.run_op(op, state)
                if op.operation.is_write:
                    expected = op.operation.write_value
                elif op.expected is not None:
                    if opres.sensed != op.expected:
                        result.failures.append(MarchFailure(
                            ei, address, oi, op.expected, opres.sensed))
                        if stop_at_first:
                            return result
                    # March semantics: after a read the cell is assumed
                    # to hold what was read back (restore).
                    expected = op.expected
    return result
