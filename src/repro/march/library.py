"""Standard march tests from the memory-testing literature.

The classic algorithms referenced throughout the van de Goor school of
memory testing (and used in the industrial evaluations the paper cites,
[vdGoor99] / [Schanstra99]):

========  ====  ===========================================
Test      Ops   Notation
========  ====  ===========================================
MATS      4N    ⇕(w0); ⇕(r0,w1); ⇕(r1)
MATS+     5N    ⇕(w0); ⇑(r0,w1); ⇓(r1,w0)
MATS++    6N    ⇕(w0); ⇑(r0,w1); ⇓(r1,w0,r0)
March X   6N    ⇕(w0); ⇑(r0,w1); ⇓(r1,w0); ⇕(r0)
March Y   8N    ⇕(w0); ⇑(r0,w1,r1); ⇓(r1,w0,r0); ⇕(r0)
March C−  10N   ⇕(w0); ⇑(r0,w1); ⇑(r1,w0); ⇓(r0,w1); ⇓(r1,w0); ⇕(r0)
March A   15N   ⇕(w0); ⇑(r0,w1,w0,w1); ⇑(r1,w0,w1);
                ⇓(r1,w0,w1,w0); ⇓(r0,w1,w0)
March B   17N   ⇕(w0); ⇑(r0,w1,r1,w0,r0,w1); ⇑(r1,w0,w1);
                ⇓(r1,w0,w1,w0); ⇓(r0,w1,w0)
PMOVI     13N   ⇓(w0); ⇑(r0,w1,r1); ⇑(r1,w0,r0);
                ⇓(r0,w1,r1); ⇓(r1,w0,r0)
========  ====  ===========================================
"""

from __future__ import annotations

from repro.march.notation import MarchTest, parse_march

MATS = parse_march("MATS", "b(w0); b(r0,w1); b(r1)")
MATS_PLUS = parse_march("MATS+", "b(w0); u(r0,w1); d(r1,w0)")
MATS_PP = parse_march("MATS++", "b(w0); u(r0,w1); d(r1,w0,r0)")
MARCH_X = parse_march("March X", "b(w0); u(r0,w1); d(r1,w0); b(r0)")
MARCH_Y = parse_march("March Y",
                      "b(w0); u(r0,w1,r1); d(r1,w0,r0); b(r0)")
MARCH_CMINUS = parse_march(
    "March C-",
    "b(w0); u(r0,w1); u(r1,w0); d(r0,w1); d(r1,w0); b(r0)")
MARCH_A = parse_march(
    "March A",
    "b(w0); u(r0,w1,w0,w1); u(r1,w0,w1); d(r1,w0,w1,w0); d(r0,w1,w0)")
MARCH_B = parse_march(
    "March B",
    "b(w0); u(r0,w1,r1,w0,r0,w1); u(r1,w0,w1); d(r1,w0,w1,w0); "
    "d(r0,w1,w0)")
PMOVI = parse_march(
    "PMOVI",
    "d(w0); u(r0,w1,r1); u(r1,w0,r0); d(r0,w1,r1); d(r1,w0,r0)")

#: The library in increasing-length order.
STANDARD_TESTS: tuple[MarchTest, ...] = (
    MATS, MATS_PLUS, MATS_PP, MARCH_X, MARCH_Y, MARCH_CMINUS, PMOVI,
    MARCH_A, MARCH_B,
)
