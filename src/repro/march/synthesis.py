"""Synthesize march tests from detection conditions.

The paper's output per defect is a *detection condition* — a single-cell
operation sequence like ``⇕(w1 w1 w0 r0)``.  To use it in production it
must be embedded in a march test: element-wise, every address receives
the complete sequence before the march moves on, which preserves the
per-cell operation order the condition requires.

:func:`march_from_conditions` merges several conditions (e.g. the true
and complementary rows of Table 1, or several defects') into one march
test, de-duplicating sequences and prefixing an initialising write so
every read expectation is defined from a known state.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.analysis.detection import DetectionCondition
from repro.dram.ops import Op, Operation
from repro.march.notation import AddressOrder, MarchElement, MarchTest


def _element_ops(condition_ops: Sequence[Op]) -> tuple[Op, ...]:
    """Make a condition's ops self-contained as a march element.

    March semantics require every read to know its expected value from
    the element itself (the memory state at entry is whatever the
    previous element left).  Detection conditions from
    :mod:`repro.analysis.detection` always start with a write, so they
    are self-contained already; this helper just validates that.
    """
    ops = tuple(condition_ops)
    if not ops[0].operation.is_write:
        raise ValueError(
            "detection condition must start with a write to be "
            "embeddable in a march element")
    return ops


def march_from_conditions(conditions: Iterable[DetectionCondition], *,
                          name: str = "synthesized",
                          both_orders: bool = True) -> MarchTest:
    """Build a march test covering every detection condition.

    Each unique condition becomes one march element (ascending), plus —
    with ``both_orders`` — a descending duplicate so address-direction
    dependent mechanisms are exercised both ways, as classic march
    construction practice prescribes.
    """
    seen: set[tuple[str, ...]] = set()
    elements: list[MarchElement] = []
    for cond in conditions:
        ops = _element_ops(cond.ops)
        key = tuple(str(o) for o in ops)
        if key in seen:
            continue
        seen.add(key)
        elements.append(MarchElement(AddressOrder.UP, ops))
        if both_orders:
            elements.append(MarchElement(AddressOrder.DOWN, ops))
    if not elements:
        raise ValueError("no detection conditions supplied")
    # Initialising element so the very first reads of address-ordered
    # traversal start from a defined state.
    init = MarchElement(AddressOrder.ANY, (Op(Operation.W0),))
    return MarchTest(name, (init, *elements))


def synthesize_for_defects(defects, model_factory, *,
                           stress=None, name: str = "synthesized",
                           max_charge: int = 8) -> MarchTest:
    """Derive detection conditions for ``defects`` and merge them.

    Each defect is analysed just inside its failing range (border search
    plus probe, as in the optimizer) and the resulting conditions are
    merged into one march test.
    """
    from repro.core.border import find_border_resistance
    from repro.core.optimizer import probe_resistance
    from repro.core.stresses import NOMINAL_STRESS
    from repro.analysis.detection import derive_detection_condition

    stress = stress or NOMINAL_STRESS
    conditions = []
    for defect in defects:
        model = model_factory(defect, stress)
        border = find_border_resistance(model, defect, stress=stress,
                                        rel_tol=0.1)
        probe = probe_resistance(defect, border)
        cond = derive_detection_condition(model, probe,
                                          max_charge=max_charge)
        if cond is not None:
            conditions.append(cond)
    return march_from_conditions(conditions, name=name)
