"""Setup shim for environments without the ``wheel`` package.

Allows ``pip install -e . --no-build-isolation`` (which falls back to
``setup.py develop``) on offline machines; all metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
