#!/usr/bin/env python
"""Merge every committed ``BENCH_*.json`` into one trajectory table.

Each benchmark commits a machine-readable ``BENCH_<name>.json`` next to
its ``reports/<name>.txt`` rendering (see ``benchmarks/_common.py``).
Their payload schemas differ per benchmark, but all speedup-style
metrics follow the ``speedup``/``*_speedup`` naming convention and all
correctness gates follow ``parity``/``*_ok``/``bitwise``/
``*_identical``.  This script walks the repo root (or ``--dir``),
extracts those, and renders one table — the cross-PR performance
trajectory of the codebase.  CI emits it into the bench-summary
artifact so a regression is one diff away.

Exit code 1 (with ``--check``) when any benchmark's correctness flags
are false — the trajectory is only meaningful over valid runs.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys


def _walk(prefix: str, value, out: dict) -> None:
    """Flatten nested dicts into dotted keys (lists stay opaque)."""
    if isinstance(value, dict):
        for k, v in value.items():
            _walk(f"{prefix}.{k}" if prefix else str(k), v, out)
    else:
        out[prefix] = value


def extract(payload: dict) -> dict:
    """The trajectory-relevant slice of one benchmark payload."""
    flat: dict = {}
    _walk("", payload, flat)
    speedups = {k: v for k, v in flat.items()
                if k.split(".")[-1].endswith("speedup")
                and isinstance(v, (int, float))}
    ok_names = ("parity", "parity_ok", "bitwise", "ok", "br_identical",
                "all_verified", "br_parity", "column_parity",
                "trajectory_parity", "borders_identical",
                "directions_identical")
    checks = {k: v for k, v in flat.items()
              if k.split(".")[-1] in ok_names and isinstance(v, bool)}
    return {
        "benchmark": payload.get("benchmark", "?"),
        "speedups": speedups,
        "checks": checks,
        "quick": bool(flat.get("quick", False)),
        "python": payload.get("python"),
    }


def render(rows: list[dict]) -> str:
    lines = ["benchmark trajectory (committed BENCH_*.json)",
             "=" * 46, ""]
    width = max((len(r["benchmark"]) for r in rows), default=9)
    for row in sorted(rows, key=lambda r: r["benchmark"]):
        if row["speedups"]:
            def _label(key: str) -> str:
                parts = key.split(".")
                if parts[-1] == "speedup" and len(parts) > 1:
                    return f"{parts[-2]} speedup"
                return parts[-1]
            speed = ", ".join(
                f"{_label(k)} {v:.2f}x"
                for k, v in sorted(row["speedups"].items()))
        else:
            speed = "no speedup metric"
        n_ok = sum(row["checks"].values())
        n = len(row["checks"])
        bad = [k for k, v in row["checks"].items() if not v]
        check = f"checks {n_ok}/{n}" if n else "no checks"
        if bad:
            check += f" (FAILED: {', '.join(sorted(bad))})"
        mode = " [quick]" if row["quick"] else ""
        lines.append(f"{row['benchmark']:<{width}}  {speed}  "
                     f"[{check}]{mode}")
    if not rows:
        lines.append("(no BENCH_*.json found)")
    return "\n".join(lines)


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(
        description=__doc__.splitlines()[0])
    ap.add_argument("--dir", default=None, metavar="DIR",
                    help="directory holding BENCH_*.json (default: "
                         "repo root, then the current directory)")
    ap.add_argument("--check", action="store_true",
                    help="exit nonzero when any correctness flag in "
                         "any payload is false")
    ap.add_argument("--json", action="store_true",
                    help="emit the merged trajectory as JSON instead "
                         "of the table")
    args = ap.parse_args(argv)

    if args.dir is not None:
        root = pathlib.Path(args.dir)
    else:
        repo = pathlib.Path(__file__).resolve().parent.parent
        root = repo if list(repo.glob("BENCH_*.json")) \
            else pathlib.Path.cwd()

    rows = []
    for path in sorted(root.glob("BENCH_*.json")):
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            print(f"skipping unreadable {path.name}: {exc}",
                  file=sys.stderr)
            continue
        rows.append(extract(payload))

    if args.json:
        print(json.dumps(rows, indent=2, sort_keys=True))
    else:
        print(render(rows))

    if args.check:
        bad = [(r["benchmark"], k) for r in rows
               for k, v in r["checks"].items() if not v]
        if bad:
            for name, key in bad:
                print(f"FAIL: {name}: {key} is false", file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
