#!/usr/bin/env python
"""Kill-and-resume smoke test for CI.

Runs ``python -m repro table1`` three ways:

1. uninterrupted, to capture the reference stdout;
2. with ``--checkpoint``, SIGKILLed once the journal shows real
   progress (a mid-sweep crash, not a startup failure);
3. resumed with ``--resume`` on the same checkpoint.

Exits 0 iff the interrupted run actually died to the signal and the
resumed stdout is byte-identical to the reference.  The checkpoint
directory (journal, store, any quarantine) is left in ``--workdir`` so
CI can upload it as an artifact on failure.
"""

import argparse
import difflib
import signal
import subprocess
import sys
from pathlib import Path


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workdir", type=Path, default=Path("smoke-ck"),
                        help="checkpoint directory (kept for artifacts)")
    parser.add_argument("--kill-after", type=int, default=60,
                        metavar="N", help="journal records before SIGKILL")
    parser.add_argument("--timeout", type=float, default=300.0)
    args = parser.parse_args()
    args.workdir.mkdir(parents=True, exist_ok=True)
    ck = args.workdir / "checkpoint"

    print("[1/3] reference run (uninterrupted)", flush=True)
    reference = subprocess.run(
        [sys.executable, "-m", "repro", "table1"],
        capture_output=True, text=True, timeout=args.timeout)
    if reference.returncode != 0:
        print(reference.stderr, file=sys.stderr)
        print("FAIL: reference run failed", file=sys.stderr)
        return 1

    print(f"[2/3] checkpointed run, SIGKILL at {args.kill_after} "
          "journal records", flush=True)
    from repro.testing import run_cli_killed_mid_sweep
    interrupted = run_cli_killed_mid_sweep(
        ["table1", "--checkpoint", ck], ck,
        kill_after_records=args.kill_after, sig=signal.SIGKILL,
        timeout=args.timeout)
    if not interrupted.interrupted:
        print("FAIL: sweep finished before the kill could land "
              f"(rc={interrupted.returncode})", file=sys.stderr)
        return 1
    print(f"      killed at {interrupted.journal_records} records "
          f"(rc={interrupted.returncode})", flush=True)

    print("[3/3] resume", flush=True)
    resumed = subprocess.run(
        [sys.executable, "-m", "repro", "table1",
         "--checkpoint", str(ck), "--resume", "--profile"],
        capture_output=True, text=True, timeout=args.timeout)
    if resumed.returncode != 0:
        print(resumed.stderr, file=sys.stderr)
        print("FAIL: resumed run failed", file=sys.stderr)
        return 1
    for line in resumed.stderr.splitlines():
        if "journal" in line or "store" in line:
            print(f"      {line.strip()}", flush=True)

    if resumed.stdout != reference.stdout:
        sys.stderr.writelines(difflib.unified_diff(
            reference.stdout.splitlines(keepends=True),
            resumed.stdout.splitlines(keepends=True),
            fromfile="reference", tofile="resumed"))
        print("FAIL: resumed stdout differs from reference",
              file=sys.stderr)
        return 1
    print("OK: resumed stdout is byte-identical to the reference")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
